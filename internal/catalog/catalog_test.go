package catalog

import (
	"testing"

	"myriad/internal/integration"
	"myriad/internal/schema"
)

func exportSchemas() map[string]map[string]*schema.Schema {
	st := &schema.Schema{
		Table: "STUDENT",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "name", Type: schema.TText},
		},
		Key: []string{"id"},
	}
	return map[string]map[string]*schema.Schema{
		"east": {"student": st},
		"west": {"student": st},
	}
}

func validDef() *IntegratedDef {
	return &IntegratedDef{
		Name: "ALL_STUDENTS",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "name", Type: schema.TText},
		},
		Key:     []string{"id"},
		Combine: integration.UnionAll,
		Sources: []SourceDef{
			{Site: "east", Export: "STUDENT", ColumnMap: map[string]string{"id": "id", "name": "name"}},
			{Site: "west", Export: "STUDENT", ColumnMap: map[string]string{"id": "id", "name": "name"}},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validDef().Validate(exportSchemas()); err != nil {
		t.Fatalf("valid def rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*IntegratedDef)
	}{
		{"empty name", func(d *IntegratedDef) { d.Name = "" }},
		{"no columns", func(d *IntegratedDef) { d.Columns = nil }},
		{"no sources", func(d *IntegratedDef) { d.Sources = nil }},
		{"bad key", func(d *IntegratedDef) { d.Key = []string{"ghost"} }},
		{"merge without key", func(d *IntegratedDef) { d.Combine = integration.MergeOuter; d.Key = nil }},
		{"unknown site", func(d *IntegratedDef) { d.Sources[0].Site = "mars" }},
		{"unknown export", func(d *IntegratedDef) { d.Sources[0].Export = "GHOST" }},
		{"map to unknown column", func(d *IntegratedDef) { d.Sources[0].ColumnMap["ghost"] = "id" }},
		{"resolver for unknown column", func(d *IntegratedDef) { d.Resolvers = map[string]string{"ghost": "first"} }},
		{"unknown resolver fn", func(d *IntegratedDef) { d.Resolvers = map[string]string{"name": "nope_fn"} }},
		{"merge source missing key map", func(d *IntegratedDef) {
			d.Combine = integration.MergeOuter
			delete(d.Sources[1].ColumnMap, "id")
		}},
	}
	for _, m := range mutations {
		d := validDef()
		m.mut(d)
		if err := d.Validate(exportSchemas()); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestDefSchemaAndColIndex(t *testing.T) {
	d := validDef()
	sc := d.Schema()
	if sc.Table != "ALL_STUDENTS" || len(sc.Columns) != 2 || sc.Key[0] != "id" {
		t.Errorf("Schema(): %v", sc)
	}
	if d.ColIndex("NAME") != 1 || d.ColIndex("nope") != -1 {
		t.Error("ColIndex")
	}
}

func TestSourceMapFold(t *testing.T) {
	s := &SourceDef{ColumnMap: map[string]string{"Id": "sid"}}
	if v, ok := s.MapFold("ID"); !ok || v != "sid" {
		t.Errorf("MapFold: %q %v", v, ok)
	}
	if _, ok := s.MapFold("nope"); ok {
		t.Error("MapFold found missing key")
	}
}

func TestCatalogLifecycle(t *testing.T) {
	c := New("fed1")
	if c.Federation() != "fed1" {
		t.Error("federation name")
	}
	st := exportSchemas()["east"]["student"]
	c.SetSiteExports("East", []*schema.Schema{st})
	c.SetSiteExports("west", []*schema.Schema{st})

	if got := c.Sites(); len(got) != 2 || got[0] != "east" {
		t.Errorf("Sites: %v", got)
	}
	if _, ok := c.ExportSchema("EAST", "Student"); !ok {
		t.Error("case-insensitive export lookup failed")
	}
	if _, ok := c.ExportSchema("mars", "student"); ok {
		t.Error("unknown site export found")
	}
	if exps := c.SiteExports("east"); len(exps) != 1 {
		t.Errorf("SiteExports: %v", exps)
	}

	if err := c.Define(validDef()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Integrated("all_students"); !ok {
		t.Error("integrated lookup failed")
	}
	if names := c.IntegratedNames(); len(names) != 1 || names[0] != "all_students" {
		t.Errorf("names: %v", names)
	}
	if err := c.Drop("ALL_STUDENTS"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("ALL_STUDENTS"); err == nil {
		t.Error("double drop accepted")
	}

	// Define must fail against a catalog missing the sites.
	empty := New("fed2")
	if err := empty.Define(validDef()); err == nil {
		t.Error("define with unknown sites accepted")
	}
}

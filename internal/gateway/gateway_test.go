package gateway

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"myriad/internal/comm"
	"myriad/internal/dialect"
	"myriad/internal/localdb"
)

func testGateway(t *testing.T, d *dialect.Dialect) (*Gateway, *localdb.DB) {
	t.Helper()
	db := localdb.New("east")
	db.MustExec(`CREATE TABLE students (sid INTEGER PRIMARY KEY, sname TEXT NOT NULL, gpa FLOAT, yr INTEGER)`)
	db.MustExec(`INSERT INTO students VALUES (1, 'ann', 3.9, 1), (2, 'bo', 3.1, 2), (3, 'cy', 2.5, 3)`)
	db.MustExec(`CREATE TABLE secrets (id INTEGER PRIMARY KEY, code TEXT)`)
	g := New("east", db, d)
	if err := g.DefineExport(Export{
		Name: "STUDENT", LocalTable: "students",
		Columns: []ExportColumn{
			{Export: "id", Local: "sid"},
			{Export: "name", Local: "sname"},
			{Export: "gpa", Local: "gpa"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return g, db
}

func TestExportSchemas(t *testing.T) {
	g, _ := testGateway(t, dialect.Oracle())
	scs, err := g.ExportSchemas()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("%d exports", len(scs))
	}
	sc := scs[0]
	if sc.Table != "STUDENT" || len(sc.Columns) != 3 {
		t.Fatalf("schema: %v", sc)
	}
	if sc.ColIndex("name") != 1 {
		t.Error("renamed column missing")
	}
	// yr is not exported.
	if sc.ColIndex("yr") != -1 {
		t.Error("unexported column leaked")
	}
	// Key carries through the rename.
	if len(sc.Key) != 1 || sc.Key[0] != "id" {
		t.Errorf("export key: %v", sc.Key)
	}
}

func TestExportValidation(t *testing.T) {
	g, _ := testGateway(t, nil)
	if err := g.DefineExport(Export{Name: "", LocalTable: "students"}); err == nil {
		t.Error("nameless export accepted")
	}
	if err := g.DefineExport(Export{Name: "X", LocalTable: "ghost"}); err == nil {
		t.Error("export of missing table accepted")
	}
	if err := g.DefineExport(Export{Name: "X", LocalTable: "students",
		Columns: []ExportColumn{{Export: "a", Local: "ghost"}}}); err == nil {
		t.Error("export of missing column accepted")
	}
	if err := g.DefineExport(Export{Name: "X", LocalTable: "students", Predicate: "gpa >"}); err == nil {
		t.Error("bad predicate accepted")
	}
}

func TestQueryTranslation(t *testing.T) {
	for _, d := range []*dialect.Dialect{dialect.Oracle(), dialect.Postgres(), dialect.Canonical()} {
		g, _ := testGateway(t, d)
		ctx := context.Background()

		rs, err := g.Query(ctx, 0, `SELECT name FROM STUDENT WHERE id = 2`)
		if err != nil {
			t.Fatalf("[%s] %v", d.Name, err)
		}
		if len(rs.Rows) != 1 || rs.Rows[0][0].Text() != "bo" {
			t.Errorf("[%s] point query: %v", d.Name, rs.Rows)
		}
		// Output headers use export names.
		if rs.Columns[0] != "name" {
			t.Errorf("[%s] header: %v", d.Name, rs.Columns)
		}

		rs, err = g.Query(ctx, 0, `SELECT * FROM STUDENT ORDER BY gpa DESC LIMIT 2`)
		if err != nil {
			t.Fatalf("[%s] star: %v", d.Name, err)
		}
		if len(rs.Rows) != 2 || rs.Columns[0] != "id" || rs.Rows[0][1].Text() != "ann" {
			t.Errorf("[%s] star+limit: %v %v", d.Name, rs.Columns, rs.Rows)
		}

		rs, err = g.Query(ctx, 0, `SELECT COUNT(*) AS n, ROUND(AVG(gpa), 2) AS avg FROM STUDENT WHERE gpa > 3`)
		if err != nil {
			t.Fatalf("[%s] agg: %v", d.Name, err)
		}
		if rs.Rows[0][0].Text() != "2" || rs.Rows[0][1].Text() != "3.5" {
			t.Errorf("[%s] agg: %v", d.Name, rs.Rows)
		}

		// Self-join through aliases.
		rs, err = g.Query(ctx, 0, `SELECT a.name, b.name FROM STUDENT a JOIN STUDENT b ON a.id = b.id - 1 WHERE a.id = 1`)
		if err != nil {
			t.Fatalf("[%s] join: %v", d.Name, err)
		}
		if len(rs.Rows) != 1 || rs.Rows[0][1].Text() != "bo" {
			t.Errorf("[%s] join: %v", d.Name, rs.Rows)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	g, _ := testGateway(t, dialect.Oracle())
	ctx := context.Background()
	if _, err := g.Query(ctx, 0, `SELECT x FROM GHOST`); err == nil {
		t.Error("unknown export accepted")
	}
	if _, err := g.Query(ctx, 0, `SELECT ghost FROM STUDENT`); err == nil {
		t.Error("unknown export column accepted")
	}
	if _, err := g.Query(ctx, 0, `SELECT yr FROM STUDENT`); err == nil {
		t.Error("unexported column accessible")
	}
	if _, err := g.Query(ctx, 0, `UPDATE STUDENT SET gpa = 4`); err == nil {
		t.Error("Query accepted DML")
	}
	if _, err := g.Query(ctx, 99, `SELECT name FROM STUDENT`); err == nil {
		t.Error("unknown txn accepted")
	}
}

func TestPredicatedExport(t *testing.T) {
	g, db := testGateway(t, dialect.Postgres())
	ctx := context.Background()
	if err := g.DefineExport(Export{
		Name: "HONOR_STUDENT", LocalTable: "students",
		Columns:   []ExportColumn{{Export: "id", Local: "sid"}, {Export: "name", Local: "sname"}},
		Predicate: `gpa >= 3.5`,
	}); err != nil {
		t.Fatal(err)
	}
	rs, err := g.Query(ctx, 0, `SELECT name FROM HONOR_STUDENT`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Text() != "ann" {
		t.Errorf("predicate not applied: %v", rs.Rows)
	}
	// Predicated exports are read-only.
	if _, err := g.Exec(ctx, 0, `DELETE FROM HONOR_STUDENT`); err == nil {
		t.Error("write to predicated export accepted")
	}
	// The predicate applies per-alias in joins.
	rs, err = g.Query(ctx, 0, `SELECT COUNT(*) FROM HONOR_STUDENT h JOIN STUDENT s ON h.id = s.id`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Text() != "1" {
		t.Errorf("join with predicated export: %v", rs.Rows)
	}
	_ = db
}

func TestExecTranslation(t *testing.T) {
	g, db := testGateway(t, dialect.Oracle())
	ctx := context.Background()

	n, err := g.Exec(ctx, 0, `INSERT INTO STUDENT (id, name, gpa) VALUES (9, 'zed', 2.0)`)
	if err != nil || n != 1 {
		t.Fatalf("insert: %d %v", n, err)
	}
	rs, _ := db.Query(ctx, `SELECT sname FROM students WHERE sid = 9`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].Text() != "zed" {
		t.Errorf("insert not visible locally: %v", rs.Rows)
	}

	n, err = g.Exec(ctx, 0, `UPDATE STUDENT SET gpa = gpa + 1 WHERE name = 'zed'`)
	if err != nil || n != 1 {
		t.Fatalf("update: %d %v", n, err)
	}
	n, err = g.Exec(ctx, 0, `DELETE FROM STUDENT WHERE id = 9`)
	if err != nil || n != 1 {
		t.Fatalf("delete: %d %v", n, err)
	}
	// NOT NULL column missing -> statement fails cleanly.
	if _, err := g.Exec(ctx, 0, `INSERT INTO STUDENT (id, gpa) VALUES (10, 1.0)`); err == nil {
		t.Error("insert without NOT NULL column accepted")
	}
}

func TestTransactionBranch2PC(t *testing.T) {
	g, db := testGateway(t, dialect.Postgres())
	ctx := context.Background()

	txn, err := g.Begin(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Exec(ctx, txn, `UPDATE STUDENT SET gpa = 0 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	// Not visible outside the branch (the branch holds X locks, so read
	// a different key to avoid blocking).
	rs, _ := db.Query(ctx, `SELECT gpa FROM students WHERE sid = 2`)
	if rs.Rows[0][0].Text() != "3.1" {
		t.Error("unrelated row changed")
	}
	if err := g.Prepare(ctx, txn); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(ctx, txn); err != nil {
		t.Fatal(err)
	}
	rs, _ = db.Query(ctx, `SELECT gpa FROM students WHERE sid = 1`)
	if rs.Rows[0][0].Text() != "0" {
		t.Error("prepared commit lost")
	}

	// Abort path.
	txn2, _ := g.Begin(ctx, 0)
	if _, err := g.Exec(ctx, txn2, `DELETE FROM STUDENT WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	if err := g.Abort(ctx, txn2); err != nil {
		t.Fatal(err)
	}
	rs, _ = db.Query(ctx, `SELECT COUNT(*) FROM students`)
	if rs.Rows[0][0].Text() != "3" {
		t.Error("abort did not restore row")
	}
	// Abort is idempotent, even for unknown branches.
	if err := g.Abort(ctx, txn2); err != nil {
		t.Error(err)
	}
	if err := g.Abort(ctx, 424242); err != nil {
		t.Error(err)
	}
}

func TestTimeoutMapsToErrTimeout(t *testing.T) {
	g, db := testGateway(t, nil)
	ctx := context.Background()

	// A local transaction holds the lock...
	blocker := db.Begin()
	if _, err := blocker.Exec(ctx, `UPDATE students SET gpa = 1 WHERE sid = 1`); err != nil {
		t.Fatal(err)
	}
	defer blocker.Rollback()

	// ...and the gateway's default timeout fires.
	g.DefaultTimeout = 30 * time.Millisecond
	txn, _ := g.Begin(ctx, 0)
	_, err := g.Exec(ctx, txn, `UPDATE STUDENT SET gpa = 2 WHERE id = 1`)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if err := g.Abort(ctx, txn); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	g, _ := testGateway(t, nil)
	ts, err := g.Stats("STUDENT")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Table != "STUDENT" || ts.Rows != 3 {
		t.Errorf("stats: %+v", ts)
	}
	// Columns renamed to export names; unexported ones absent.
	if _, ok := ts.Col("name"); !ok {
		t.Error("no stats for renamed column")
	}
	if _, ok := ts.Col("yr"); ok {
		t.Error("stats leaked for unexported column")
	}
	if _, err := g.Stats("GHOST"); err == nil {
		t.Error("stats for unknown export")
	}
}

func TestHandleProtocol(t *testing.T) {
	g, _ := testGateway(t, dialect.Oracle())
	ctx := context.Background()

	resp := g.Handle(ctx, &comm.Request{Op: comm.OpPing})
	if resp.AsError() != nil {
		t.Fatal(resp.AsError())
	}
	resp = g.Handle(ctx, &comm.Request{Op: comm.OpSchema})
	if len(resp.Schemas) != 1 {
		t.Errorf("schemas: %v", resp.Schemas)
	}
	resp = g.Handle(ctx, &comm.Request{Op: comm.OpQuery, SQL: `SELECT name FROM STUDENT WHERE id = 1`})
	if resp.AsError() != nil || resp.Rows.Rows[0][0].Text() != "ann" {
		t.Errorf("query: %v %v", resp.Err, resp.Rows)
	}
	resp = g.Handle(ctx, &comm.Request{Op: comm.OpStats, Table: "STUDENT"})
	if resp.Stats == nil || resp.Stats.Rows != 3 {
		t.Errorf("stats: %+v", resp.Stats)
	}
	resp = g.Handle(ctx, &comm.Request{Op: "bogus"})
	if resp.AsError() == nil {
		t.Error("bogus op accepted")
	}

	// Full txn cycle through the protocol.
	resp = g.Handle(ctx, &comm.Request{Op: comm.OpBegin})
	txn := resp.TxnID
	resp = g.Handle(ctx, &comm.Request{Op: comm.OpExec, TxnID: txn, SQL: `UPDATE STUDENT SET gpa = 4 WHERE id = 3`})
	if resp.AsError() != nil || resp.Affected != 1 {
		t.Fatalf("exec: %v %d", resp.Err, resp.Affected)
	}
	resp = g.Handle(ctx, &comm.Request{Op: comm.OpPrepare, TxnID: txn})
	if resp.AsError() != nil {
		t.Fatal(resp.AsError())
	}
	resp = g.Handle(ctx, &comm.Request{Op: comm.OpCommit, TxnID: txn})
	if resp.AsError() != nil {
		t.Fatal(resp.AsError())
	}
}

func TestRemoteConnOverTCP(t *testing.T) {
	g, _ := testGateway(t, dialect.Postgres())
	srv := comm.NewServer(g)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck

	conn := DialRemote("east", addr, 2)
	defer conn.Close() //nolint:errcheck
	ctx := context.Background()

	scs, err := conn.ExportSchemas(ctx)
	if err != nil || len(scs) != 1 {
		t.Fatalf("schemas over TCP: %v %v", scs, err)
	}
	rs, err := conn.Query(ctx, 0, `SELECT name FROM STUDENT ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 || rs.Rows[0][0].Text() != "ann" {
		t.Errorf("rows over TCP: %v", rs.Rows)
	}
	ts, err := conn.Stats(ctx, "STUDENT")
	if err != nil || ts.Rows != 3 {
		t.Errorf("stats over TCP: %+v %v", ts, err)
	}

	// Distributed txn branch over TCP.
	txn, err := conn.Begin(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(ctx, txn, `UPDATE STUDENT SET gpa = 1.1 WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	if err := conn.Prepare(ctx, txn); err != nil {
		t.Fatal(err)
	}
	if err := conn.Commit(ctx, txn); err != nil {
		t.Fatal(err)
	}
	rs, err = conn.Query(ctx, 0, `SELECT gpa FROM STUDENT WHERE id = 2`)
	if err != nil || rs.Rows[0][0].Text() != "1.1" {
		t.Errorf("committed value over TCP: %v %v", rs.Rows, err)
	}

	// Timeout classification crosses the wire.
	g.DefaultTimeout = 30 * time.Millisecond
	blockTxn, _ := conn.Begin(ctx, 0)
	if _, err := conn.Exec(ctx, blockTxn, `UPDATE STUDENT SET gpa = 9 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	other, _ := conn.Begin(ctx, 0)
	_, err = conn.Exec(ctx, other, `UPDATE STUDENT SET gpa = 8 WHERE id = 1`)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout over TCP: %v", err)
	}
	conn.Abort(ctx, blockTxn) //nolint:errcheck
	conn.Abort(ctx, other)    //nolint:errcheck
}

func TestDialectRoundTripPreservesStrings(t *testing.T) {
	g, _ := testGateway(t, dialect.Oracle())
	ctx := context.Background()
	if _, err := g.Exec(ctx, 0, `INSERT INTO STUDENT (id, name, gpa) VALUES (20, 'o''brien', 3.0)`); err != nil {
		t.Fatal(err)
	}
	rs, err := g.Query(ctx, 0, `SELECT name FROM STUDENT WHERE id = 20`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Text() != "o'brien" {
		t.Errorf("quote mangled in translation: %q", rs.Rows[0][0].Text())
	}
	if !strings.Contains(g.Dialect(), "oracle") {
		t.Errorf("dialect name: %s", g.Dialect())
	}
}

func TestQueryLimitPushdownAcrossDialects(t *testing.T) {
	// ORDER BY + LIMIT must survive translation and the dialect round
	// trip (LIMIT/OFFSET vs FETCH FIRST) so the component engine's
	// top-K executor sees the bound instead of sorting everything and
	// truncating at the federation.
	for _, d := range []*dialect.Dialect{dialect.Canonical(), dialect.Postgres(), dialect.Oracle()} {
		g, _ := testGateway(t, d)
		ctx := context.Background()
		rs, err := g.Query(ctx, 0, `SELECT name FROM STUDENT ORDER BY gpa DESC LIMIT 2`)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if len(rs.Rows) != 2 {
			t.Fatalf("%s: got %d rows, want 2 (limit lost in round trip)", d.Name, len(rs.Rows))
		}
		if rs.Rows[0][0].Text() != "ann" || rs.Rows[1][0].Text() != "bo" {
			t.Errorf("%s: top-2 order wrong: %v", d.Name, rs.Rows)
		}
		// OFFSET too.
		rs, err = g.Query(ctx, 0, `SELECT name FROM STUDENT ORDER BY gpa DESC LIMIT 2 OFFSET 1`)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if len(rs.Rows) != 2 || rs.Rows[0][0].Text() != "bo" || rs.Rows[1][0].Text() != "cy" {
			t.Errorf("%s: offset window wrong: %v", d.Name, rs.Rows)
		}
	}
}

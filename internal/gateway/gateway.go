// Package gateway implements MYRIAD's local database gateways: the
// adapters that expose a component DBMS's export relations to the
// federation, translate canonical federation SQL into the component's
// dialect, enforce the per-query timeout the paper uses to resolve
// global deadlocks, and participate in two-phase commit.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"myriad/internal/comm"
	"myriad/internal/dialect"
	"myriad/internal/localdb"
	"myriad/internal/lockmgr"
	"myriad/internal/schema"
	"myriad/internal/sqlparser"
	"myriad/internal/storage"
	"myriad/internal/value"
)

// ErrTimeout is surfaced when a local query exceeds its timeout; the
// global transaction manager treats it as a presumed global deadlock.
var ErrTimeout = errors.New("gateway: local query timeout (presumed global deadlock)")

// ErrWounded is surfaced when a branch's lock wait was preempted as a
// deadlock victim — by the site-local wound-wait fast path or by the
// coordinator's global detector. The global transaction manager aborts
// the victim and reports a retryable error to the client.
var ErrWounded = errors.New("gateway: lock wait wounded (deadlock victim)")

// ExportColumn maps a federation-visible column to a local column.
type ExportColumn struct {
	Export string
	Local  string
}

// Export defines one export relation: a renamed projection (optionally
// row-filtered) of a local table offered to federations.
type Export struct {
	Name       string
	LocalTable string
	Columns    []ExportColumn
	// Predicate, when non-empty, is a canonical SQL expression over the
	// LOCAL column names limiting the exported rows. Exports with a
	// predicate are read-only through the gateway.
	Predicate string
}

// Gateway fronts one component DBMS.
type Gateway struct {
	site    string
	db      *localdb.DB
	dialect *dialect.Dialect

	// DefaultTimeout is attached to each local query that arrives
	// without an explicit timeout (paper §2). Zero disables it.
	DefaultTimeout time.Duration

	mu      sync.RWMutex
	exports map[string]*Export // by lower-cased export name

	// Delay, when positive, is added before each local operation to
	// emulate component-DBMS latency in experiments.
	Delay time.Duration
}

// New creates a gateway for db speaking the given dialect.
func New(site string, db *localdb.DB, d *dialect.Dialect) *Gateway {
	if d == nil {
		d = dialect.Canonical()
	}
	return &Gateway{
		site:    site,
		db:      db,
		dialect: d,
		exports: make(map[string]*Export),
	}
}

// Site returns the component site name.
func (g *Gateway) Site() string { return g.site }

// Dialect returns the component dialect name.
func (g *Gateway) Dialect() string { return g.dialect.Name }

// DefineExport registers (or replaces) an export relation. Columns may
// be empty to export every local column under its own name.
func (g *Gateway) DefineExport(e Export) error {
	sc, err := g.db.TableSchema(e.LocalTable)
	if err != nil {
		return fmt.Errorf("gateway %s: export %s: %w", g.site, e.Name, err)
	}
	if e.Name == "" {
		return fmt.Errorf("gateway %s: export needs a name", g.site)
	}
	if len(e.Columns) == 0 {
		for _, c := range sc.Columns {
			e.Columns = append(e.Columns, ExportColumn{Export: c.Name, Local: c.Name})
		}
	}
	for _, c := range e.Columns {
		if sc.ColIndex(c.Local) < 0 {
			return fmt.Errorf("gateway %s: export %s: local column %q missing in %s", g.site, e.Name, c.Local, e.LocalTable)
		}
	}
	if e.Predicate != "" {
		if _, err := sqlparser.ParseExpr(e.Predicate); err != nil {
			return fmt.Errorf("gateway %s: export %s predicate: %w", g.site, e.Name, err)
		}
	}
	g.mu.Lock()
	g.exports[strings.ToLower(e.Name)] = &e
	g.mu.Unlock()
	return nil
}

// export looks up an export definition.
func (g *Gateway) export(name string) (*Export, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.exports[strings.ToLower(name)]
	return e, ok
}

// ExportSchemas returns the federation-visible schema of every export.
func (g *Gateway) ExportSchemas() ([]*schema.Schema, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*schema.Schema
	for _, e := range g.exports {
		sc, err := g.exportSchema(e)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

func (g *Gateway) exportSchema(e *Export) (*schema.Schema, error) {
	local, err := g.db.TableSchema(e.LocalTable)
	if err != nil {
		return nil, err
	}
	sc := &schema.Schema{Table: e.Name}
	localToExport := make(map[string]string)
	for _, c := range e.Columns {
		ci := local.ColIndex(c.Local)
		col := local.Columns[ci]
		sc.Columns = append(sc.Columns, schema.Column{Name: c.Export, Type: col.Type, NotNull: col.NotNull})
		localToExport[strings.ToLower(col.Name)] = c.Export
	}
	// The export inherits the local key when every key column is
	// exported.
	var key []string
	for _, k := range local.Key {
		ek, ok := localToExport[strings.ToLower(k)]
		if !ok {
			key = nil
			break
		}
		key = append(key, ek)
	}
	sc.Key = key
	return sc, nil
}

// Stats returns optimizer statistics for one export relation, with
// columns renamed to export names.
func (g *Gateway) Stats(name string) (*storage.TableStats, error) {
	e, ok := g.export(name)
	if !ok {
		return nil, fmt.Errorf("gateway %s: no export %q", g.site, name)
	}
	ts, err := g.db.TableStats(e.LocalTable)
	if err != nil {
		return nil, err
	}
	out := &storage.TableStats{Table: e.Name, Rows: ts.Rows}
	for _, c := range e.Columns {
		if cs, ok := ts.Col(c.Local); ok {
			cs.Name = c.Export
			out.Columns = append(out.Columns, cs)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Query / Exec with translation and timeout

func (g *Gateway) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, has := ctx.Deadline(); has || g.DefaultTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, g.DefaultTimeout)
}

func (g *Gateway) simulateLatency() {
	if g.Delay > 0 {
		time.Sleep(g.Delay)
	}
}

func mapErr(err error) error {
	if errors.Is(err, lockmgr.ErrWounded) {
		return fmt.Errorf("%w: %v", ErrWounded, err)
	}
	if errors.Is(err, lockmgr.ErrTimeout) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// prepareSelect runs the gateway's query front half: parse the
// canonical SELECT, translate exports to local tables, and round-trip
// through the component dialect — render native SQL and re-parse,
// exactly what the 1994 gateways did over embedded SQL. It returns the
// translated AST (for restoring federation-visible column names) and
// the dialect-round-tripped AST to execute.
func (g *Gateway) prepareSelect(sql string) (translated, relSel *sqlparser.Select, err error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, nil, fmt.Errorf("gateway %s: %w", g.site, err)
	}
	sel, ok := stmt.(*sqlparser.Select)
	if !ok {
		return nil, nil, fmt.Errorf("gateway %s: Query requires SELECT", g.site)
	}
	if translated, err = g.translateSelect(sel); err != nil {
		return nil, nil, err
	}
	native := g.dialect.Render(translated)
	reparsed, err := g.dialect.Parse(native)
	if err != nil {
		return nil, nil, fmt.Errorf("gateway %s: dialect round-trip: %w", g.site, err)
	}
	if relSel, ok = reparsed.(*sqlparser.Select); !ok {
		return nil, nil, fmt.Errorf("gateway %s: dialect round-trip changed statement kind", g.site)
	}
	return translated, relSel, nil
}

// Explain renders the access path the component engine would choose
// for a canonical SELECT — per base relation: heap scan, hash-index
// probe, ordered-index range (with bounds and whether it serves the
// ORDER BY), or primary-key point read, each with its selectivity
// estimate. It plans only; no locks are taken and nothing executes.
func (g *Gateway) Explain(ctx context.Context, sql string) (string, error) {
	_, relSel, err := g.prepareSelect(sql)
	if err != nil {
		return "", err
	}
	out, err := g.db.ExplainSelect(relSel)
	if err != nil {
		return "", fmt.Errorf("gateway %s: %w", g.site, err)
	}
	return out, nil
}

// Query executes a canonical SELECT over export relations. txn 0 runs
// autocommit; otherwise the statement joins the local branch txn.
func (g *Gateway) Query(ctx context.Context, txn uint64, sql string) (*schema.ResultSet, error) {
	ctx, cancel := g.withTimeout(ctx)
	defer cancel()
	g.simulateLatency()

	translated, relSel, err := g.prepareSelect(sql)
	if err != nil {
		return nil, err
	}

	var rs *schema.ResultSet
	if txn == 0 {
		rs, err = g.db.QueryStmt(ctx, relSel)
	} else {
		branch, ok := g.db.Resume(lockmgr.TxnID(txn))
		if !ok {
			return nil, fmt.Errorf("gateway %s: unknown transaction %d", g.site, txn)
		}
		rs, err = branch.QueryStmt(ctx, relSel)
	}
	if err != nil {
		return nil, mapErr(err)
	}
	// The dialect round trip may have re-cased identifiers; restore the
	// federation-requested output names from the translated AST.
	restoreColumnNames(rs, translated)
	return rs, nil
}

// QueryStream executes a canonical SELECT over export relations and
// returns the result as a row stream driven directly by the component
// engine's iterator pipeline — the gateway never materializes the
// result, so a LIMIT 10 over a 100k-row export ships 10 rows and the
// underlying scan terminates when the stream closes. Autocommit only
// streams end-to-end; a statement inside a transaction branch (txn != 0)
// snapshots its result first, because the branch interleaves with other
// requests and cannot stay pinned to an open cursor between them.
func (g *Gateway) QueryStream(ctx context.Context, txn uint64, sql string) (schema.RowStream, error) {
	sctx, cancel := g.withTimeout(ctx)
	g.simulateLatency()

	translated, relSel, err := g.prepareSelect(sql)
	if err != nil {
		cancel()
		return nil, err
	}

	if txn != 0 {
		defer cancel()
		branch, ok := g.db.Resume(lockmgr.TxnID(txn))
		if !ok {
			return nil, fmt.Errorf("gateway %s: unknown transaction %d", g.site, txn)
		}
		rs, err := branch.QueryStmt(sctx, relSel)
		if err != nil {
			return nil, mapErr(err)
		}
		restoreColumnNames(rs, translated)
		return schema.StreamOf(rs), nil
	}

	rows, err := g.db.QueryStreamStmt(sctx, relSel)
	if err != nil {
		cancel()
		return nil, mapErr(err)
	}
	// The dialect round trip may have re-cased identifiers; restore the
	// federation-requested output names from the translated AST.
	hdr := &schema.ResultSet{Columns: append([]string(nil), rows.Columns()...)}
	restoreColumnNames(hdr, translated)
	return &gatewayStream{rows: rows, cols: hdr.Columns, ctx: sctx, cancel: cancel}, nil
}

// gatewayStream wraps a localdb stream with the gateway's renamed
// headers, timeout context, and error mapping.
type gatewayStream struct {
	rows   *localdb.Rows
	cols   []string
	ctx    context.Context
	cancel context.CancelFunc
}

func (s *gatewayStream) Columns() []string { return s.cols }

// Next pulls through the stream's own context — derived from the
// creation context (so caller cancellation propagates) and carrying the
// gateway's per-query timeout, the paper's deadlock-resolution knob —
// but also honors the per-call ctx between rows, so a consumer-side
// abort (e.g. integration cancelling siblings after one source fails)
// stops an in-process scan exactly like it stops a remote one.
func (s *gatewayStream) Next(ctx context.Context) (schema.Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := s.rows.Next(s.ctx)
	if err != nil {
		return nil, mapErr(err)
	}
	return r, nil
}

func (s *gatewayStream) Close() error {
	err := s.rows.Close()
	s.cancel()
	return err
}

// Ordering forwards the engine stream's sort guarantee. The gateway's
// header renaming keeps column positions, so the positional keys stay
// valid under the restored names.
func (s *gatewayStream) Ordering() []schema.SortKey { return s.rows.Ordering() }

// restoreColumnNames renames result headers to the aliases of the
// (pre-dialect) translated select when arities line up.
func restoreColumnNames(rs *schema.ResultSet, sel *sqlparser.Select) {
	if rs == nil || len(sel.Items) != len(rs.Columns) {
		return
	}
	for i, it := range sel.Items {
		switch {
		case it.As != "":
			rs.Columns[i] = it.As
		default:
			if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
				rs.Columns[i] = cr.Column
			}
		}
	}
}

// Exec executes canonical DML against export relations inside the given
// branch (or autocommit when txn is 0).
func (g *Gateway) Exec(ctx context.Context, txn uint64, sql string) (int, error) {
	ctx, cancel := g.withTimeout(ctx)
	defer cancel()
	g.simulateLatency()

	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return 0, fmt.Errorf("gateway %s: %w", g.site, err)
	}
	translated, err := g.translateDML(stmt)
	if err != nil {
		return 0, err
	}
	native := g.dialect.Render(translated)
	reparsed, err := g.dialect.Parse(native)
	if err != nil {
		return 0, fmt.Errorf("gateway %s: dialect round-trip: %w", g.site, err)
	}

	if txn == 0 {
		res, err := g.db.Exec(ctx, sqlparser.FormatStatement(reparsed, nil))
		if err != nil {
			return 0, mapErr(err)
		}
		return res.RowsAffected, nil
	}
	branch, ok := g.db.Resume(lockmgr.TxnID(txn))
	if !ok {
		return 0, fmt.Errorf("gateway %s: unknown transaction %d", g.site, txn)
	}
	res, err := branch.ExecStmt(ctx, reparsed)
	if err != nil {
		return 0, mapErr(err)
	}
	return res.RowsAffected, nil
}

// Begin opens a local transaction branch for global transaction gid
// (0 = purely local) and returns its id.
func (g *Gateway) Begin(ctx context.Context, gid uint64) (uint64, error) {
	tx := g.db.BeginGlobal(gid)
	return tx.ID(), nil
}

// WaitGraph snapshots the site's live lock waits-for edges in the wire
// representation. Wait durations are reported as elapsed milliseconds
// so the coordinator needs no clock agreement with the site.
func (g *Gateway) WaitGraph() []comm.WaitEdge {
	edges := g.db.WaitGraph()
	out := make([]comm.WaitEdge, 0, len(edges))
	for _, e := range edges {
		we := comm.WaitEdge{
			Waiter:    uint64(e.Waiter),
			WaiterGID: e.WaiterGID,
			Resource:  e.Resource,
			WaitMs:    time.Since(e.Since).Milliseconds(),
		}
		for _, h := range e.Holders {
			we.Holders = append(we.Holders, uint64(h))
		}
		we.HolderGIDs = append(we.HolderGIDs, e.HolderGIDs...)
		out = append(out, we)
	}
	return out
}

// Prepare is 2PC phase one for the branch.
func (g *Gateway) Prepare(ctx context.Context, txn uint64) error {
	branch, ok := g.db.Resume(lockmgr.TxnID(txn))
	if !ok {
		return fmt.Errorf("gateway %s: unknown transaction %d", g.site, txn)
	}
	return branch.Prepare()
}

// Commit is 2PC phase two (or a one-phase commit). An unknown branch
// commits successfully: a yes vote is durable before it is cast, so a
// recovered site always still knows its prepared branches — a commit
// arriving for an unknown one means the branch already finished and
// only the acknowledgement was lost, and re-drives must be idempotent.
func (g *Gateway) Commit(ctx context.Context, txn uint64) error {
	branch, ok := g.db.Resume(lockmgr.TxnID(txn))
	if !ok {
		return nil
	}
	return branch.Commit()
}

// PreparedBranches lists the in-doubt (prepared) branch ids the site's
// engine recovered, in ascending order.
func (g *Gateway) PreparedBranches() []uint64 {
	return g.db.PreparedTxns()
}

// ResolvePrepared resolves every recovered prepared branch through
// status — the pull path of in-doubt resolution, for a site that comes
// back while the coordinator is reachable: StatusCommit commits the
// branch, StatusAbort rolls it back (releasing its locks), and
// StatusPending leaves it holding them. The first error stops the walk;
// already-resolved branches are skipped.
func (g *Gateway) ResolvePrepared(ctx context.Context, status func(ctx context.Context, branch uint64) (string, error)) error {
	for _, id := range g.db.PreparedTxns() {
		branch, ok := g.db.Resume(lockmgr.TxnID(id))
		if !ok {
			continue
		}
		st, err := status(ctx, id)
		if err != nil {
			return fmt.Errorf("gateway %s: resolving branch %d: %w", g.site, id, err)
		}
		switch st {
		case "commit":
			if err := branch.Commit(); err != nil {
				return fmt.Errorf("gateway %s: committing resolved branch %d: %w", g.site, id, err)
			}
		case "abort":
			branch.Rollback()
		default: // pending — the coordinator has not decided; keep waiting
		}
	}
	return nil
}

// Abort rolls the branch back; it is idempotent and succeeds for
// unknown branches (they may have aborted already). The branch is
// wounded first: if a statement is parked in the lock manager it holds
// the branch's mutex, so rollback would block behind it forever —
// wounding fails the parked wait immediately and lets the statement
// unwind before the rollback takes the mutex.
func (g *Gateway) Abort(ctx context.Context, txn uint64) error {
	g.db.Wound(lockmgr.TxnID(txn))
	branch, ok := g.db.Resume(lockmgr.TxnID(txn))
	if !ok {
		return nil
	}
	branch.Rollback()
	return nil
}

// ---------------------------------------------------------------------
// Translation: canonical/export SQL -> local-table SQL

// exportBinding tracks one FROM entry during translation.
type exportBinding struct {
	alias  string // effective name visible in the query
	export *Export
	sc     *schema.Schema // export-visible schema
}

func (g *Gateway) bindingFor(ref sqlparser.TableRef) (*exportBinding, error) {
	e, ok := g.export(ref.Name)
	if !ok {
		return nil, fmt.Errorf("gateway %s: no export relation %q", g.site, ref.Name)
	}
	sc, err := g.exportSchema(e)
	if err != nil {
		return nil, err
	}
	return &exportBinding{alias: ref.EffectiveName(), export: e, sc: sc}, nil
}

// translateSelect rewrites a canonical SELECT over exports into one over
// local tables: table names are replaced (keeping the visible alias),
// stars are expanded to aliased export columns, column references are
// renamed, and export predicates are ANDed into WHERE.
func (g *Gateway) translateSelect(sel *sqlparser.Select) (*sqlparser.Select, error) {
	out := *sel
	var binds []*exportBinding

	out.From = nil
	for _, ref := range sel.From {
		b, err := g.bindingFor(ref)
		if err != nil {
			return nil, err
		}
		binds = append(binds, b)
		out.From = append(out.From, sqlparser.TableRef{Name: b.export.LocalTable, Alias: b.alias})
	}
	out.Joins = nil
	for _, j := range sel.Joins {
		b, err := g.bindingFor(j.Table)
		if err != nil {
			return nil, err
		}
		binds = append(binds, b)
		nj := j
		nj.Table = sqlparser.TableRef{Name: b.export.LocalTable, Alias: b.alias}
		nj.On = nil // rewritten below once all bindings are known
		out.Joins = append(out.Joins, nj)
	}

	rewrite := func(e sqlparser.Expr) (sqlparser.Expr, error) {
		return rewriteColumns(e, binds)
	}

	// Expand stars into aliased items so output headers keep export
	// column names even after renaming.
	var items []sqlparser.SelectItem
	for _, it := range sel.Items {
		switch {
		case it.Star && it.Table == "":
			for _, b := range binds {
				for _, c := range b.sc.Columns {
					items = append(items, starItem(b, c.Name))
				}
			}
		case it.Star:
			found := false
			for _, b := range binds {
				if strings.EqualFold(b.alias, it.Table) {
					for _, c := range b.sc.Columns {
						items = append(items, starItem(b, c.Name))
					}
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("gateway %s: unknown relation %q in star", g.site, it.Table)
			}
		default:
			e, err := rewrite(it.Expr)
			if err != nil {
				return nil, err
			}
			alias := it.As
			if alias == "" {
				if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
					alias = cr.Column
				}
			}
			items = append(items, sqlparser.SelectItem{Expr: e, As: alias})
		}
	}
	out.Items = items

	var err error
	if out.Where, err = rewrite(sel.Where); err != nil {
		return nil, err
	}
	for i, j := range sel.Joins {
		if out.Joins[i].On, err = rewrite(j.On); err != nil {
			return nil, err
		}
	}
	out.GroupBy = nil
	for _, e := range sel.GroupBy {
		re, err := rewrite(e)
		if err != nil {
			return nil, err
		}
		out.GroupBy = append(out.GroupBy, re)
	}
	if out.Having, err = rewrite(sel.Having); err != nil {
		return nil, err
	}
	out.OrderBy = nil
	for _, o := range sel.OrderBy {
		re, err := rewrite(o.Expr)
		if err != nil {
			return nil, err
		}
		out.OrderBy = append(out.OrderBy, sqlparser.OrderItem{Expr: re, Desc: o.Desc})
	}

	// Export predicates: qualify with the binding alias and AND in.
	for _, b := range binds {
		if b.export.Predicate == "" {
			continue
		}
		pred, err := sqlparser.ParseExpr(b.export.Predicate)
		if err != nil {
			return nil, err
		}
		qualified := sqlparser.RewriteExpr(pred, func(e sqlparser.Expr) sqlparser.Expr {
			if cr, ok := e.(*sqlparser.ColumnRef); ok && cr.Table == "" {
				return &sqlparser.ColumnRef{Table: b.alias, Column: cr.Column}
			}
			return e
		})
		if out.Where == nil {
			out.Where = qualified
		} else {
			out.Where = &sqlparser.BinaryExpr{Op: "AND", L: out.Where, R: qualified}
		}
	}

	if sel.Compound != nil {
		right, err := g.translateSelect(sel.Compound.Right)
		if err != nil {
			return nil, err
		}
		out.Compound = &sqlparser.CompoundSelect{All: sel.Compound.All, Right: right}
	}
	return &out, nil
}

func starItem(b *exportBinding, exportCol string) sqlparser.SelectItem {
	local := exportCol
	for _, c := range b.export.Columns {
		if strings.EqualFold(c.Export, exportCol) {
			local = c.Local
			break
		}
	}
	return sqlparser.SelectItem{
		Expr: &sqlparser.ColumnRef{Table: b.alias, Column: local},
		As:   exportCol,
	}
}

// rewriteColumns renames export column references to local names using
// the bindings.
func rewriteColumns(e sqlparser.Expr, binds []*exportBinding) (sqlparser.Expr, error) {
	if e == nil {
		return nil, nil
	}
	var rerr error
	out := sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
		cr, ok := x.(*sqlparser.ColumnRef)
		if !ok {
			return x
		}
		if cr.Table != "" {
			for _, b := range binds {
				if !strings.EqualFold(b.alias, cr.Table) {
					continue
				}
				local, ok := localName(b, cr.Column)
				if !ok {
					rerr = fmt.Errorf("gateway: export %s has no column %q", b.export.Name, cr.Column)
					return x
				}
				return &sqlparser.ColumnRef{Table: cr.Table, Column: local}
			}
			rerr = fmt.Errorf("gateway: unknown relation %q", cr.Table)
			return x
		}
		// Unqualified: find the unique export owning the column.
		var owner *exportBinding
		for _, b := range binds {
			if b.sc.ColIndex(cr.Column) >= 0 {
				if owner != nil {
					rerr = fmt.Errorf("gateway: ambiguous column %q", cr.Column)
					return x
				}
				owner = b
			}
		}
		if owner == nil {
			rerr = fmt.Errorf("gateway: unknown column %q", cr.Column)
			return x
		}
		local, _ := localName(owner, cr.Column)
		return &sqlparser.ColumnRef{Table: owner.alias, Column: local}
	})
	return out, rerr
}

func localName(b *exportBinding, exportCol string) (string, bool) {
	for _, c := range b.export.Columns {
		if strings.EqualFold(c.Export, exportCol) {
			return c.Local, true
		}
	}
	return "", false
}

// translateDML rewrites INSERT/UPDATE/DELETE over an export relation.
// Predicated exports are read-only.
func (g *Gateway) translateDML(stmt sqlparser.Statement) (sqlparser.Statement, error) {
	switch s := stmt.(type) {
	case *sqlparser.Insert:
		e, ok := g.export(s.Table)
		if !ok {
			return nil, fmt.Errorf("gateway %s: no export relation %q", g.site, s.Table)
		}
		if e.Predicate != "" {
			return nil, fmt.Errorf("gateway %s: export %s is read-only (predicated)", g.site, e.Name)
		}
		out := *s
		out.Table = e.LocalTable
		cols := s.Columns
		if len(cols) == 0 {
			sc, err := g.exportSchema(e)
			if err != nil {
				return nil, err
			}
			for _, c := range sc.Columns {
				cols = append(cols, c.Name)
			}
		}
		out.Columns = nil
		for _, c := range cols {
			local, ok := localName(&exportBinding{export: e}, c)
			if !ok {
				return nil, fmt.Errorf("gateway %s: export %s has no column %q", g.site, e.Name, c)
			}
			out.Columns = append(out.Columns, local)
		}
		return &out, nil

	case *sqlparser.Update:
		e, ok := g.export(s.Table)
		if !ok {
			return nil, fmt.Errorf("gateway %s: no export relation %q", g.site, s.Table)
		}
		if e.Predicate != "" {
			return nil, fmt.Errorf("gateway %s: export %s is read-only (predicated)", g.site, e.Name)
		}
		sc, err := g.exportSchema(e)
		if err != nil {
			return nil, err
		}
		b := &exportBinding{alias: e.LocalTable, export: e, sc: sc}
		out := *s
		out.Table = e.LocalTable
		out.Set = nil
		for _, a := range s.Set {
			local, ok := localName(b, a.Column)
			if !ok {
				return nil, fmt.Errorf("gateway %s: export %s has no column %q", g.site, e.Name, a.Column)
			}
			re, err := rewriteUnqualified(a.Expr, b)
			if err != nil {
				return nil, err
			}
			out.Set = append(out.Set, sqlparser.Assignment{Column: local, Expr: re})
		}
		if out.Where, err = rewriteUnqualified(s.Where, b); err != nil {
			return nil, err
		}
		return &out, nil

	case *sqlparser.Delete:
		e, ok := g.export(s.Table)
		if !ok {
			return nil, fmt.Errorf("gateway %s: no export relation %q", g.site, s.Table)
		}
		if e.Predicate != "" {
			return nil, fmt.Errorf("gateway %s: export %s is read-only (predicated)", g.site, e.Name)
		}
		sc, err := g.exportSchema(e)
		if err != nil {
			return nil, err
		}
		b := &exportBinding{alias: e.LocalTable, export: e, sc: sc}
		out := *s
		out.Table = e.LocalTable
		if out.Where, err = rewriteUnqualified(s.Where, b); err != nil {
			return nil, err
		}
		return &out, nil

	default:
		return nil, fmt.Errorf("gateway %s: unsupported statement %T through gateway", g.site, stmt)
	}
}

// rewriteUnqualified renames unqualified export columns to local names
// (DML statements reference a single relation, so qualification is
// unnecessary).
func rewriteUnqualified(e sqlparser.Expr, b *exportBinding) (sqlparser.Expr, error) {
	if e == nil {
		return nil, nil
	}
	var rerr error
	out := sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
		cr, ok := x.(*sqlparser.ColumnRef)
		if !ok {
			return x
		}
		local, ok := localName(b, cr.Column)
		if !ok {
			rerr = fmt.Errorf("gateway: export %s has no column %q", b.export.Name, cr.Column)
			return x
		}
		return &sqlparser.ColumnRef{Column: local}
	})
	return out, rerr
}

// ---------------------------------------------------------------------
// comm.Handler: serve the gateway protocol

// HandleStream implements comm.StreamHandler: OpQuery responses are
// framed straight off the component engine's iterator pipeline — header,
// row batches, trailer — instead of materializing a ResultSet. Sink
// errors mean the client is gone; the deferred Close tears the scan
// down and releases its locks. Every other op falls back to Handle.
func (g *Gateway) HandleStream(ctx context.Context, req *comm.Request, sink comm.RowSink) error {
	if req.Op != comm.OpQuery {
		return comm.ErrNotStreamable
	}
	rows, err := g.QueryStream(ctx, req.TxnID, req.SQL)
	if err != nil {
		return streamErr(err)
	}
	defer rows.Close()
	if err := sink.Header(rows.Columns()); err != nil {
		return err
	}
	for {
		r, err := rows.Next(ctx)
		if err != nil {
			return streamErr(err)
		}
		if r == nil {
			return nil
		}
		if err := sink.Row(r); err != nil {
			return err
		}
	}
}

// streamErr tags gateway errors with the wire error kind a streaming
// trailer carries (mirrors the kind mapping of the Response path).
func streamErr(err error) error {
	if errors.Is(err, ErrWounded) || errors.Is(err, lockmgr.ErrWounded) {
		return &comm.KindError{Kind: comm.ErrWounded, Err: err}
	}
	if errors.Is(err, ErrTimeout) || errors.Is(err, lockmgr.ErrTimeout) || errors.Is(err, context.DeadlineExceeded) {
		return &comm.KindError{Kind: comm.ErrTimeout, Err: err}
	}
	return err
}

// Handle implements comm.Handler so a Gateway can be served over TCP by
// comm.Server (see cmd/gatewayd).
func (g *Gateway) Handle(ctx context.Context, req *comm.Request) *comm.Response {
	fail := func(err error) *comm.Response {
		kind := comm.ErrGeneric
		switch {
		case errors.Is(err, ErrWounded) || errors.Is(err, lockmgr.ErrWounded):
			kind = comm.ErrWounded
		case errors.Is(err, ErrTimeout) || errors.Is(err, lockmgr.ErrTimeout) || errors.Is(err, context.DeadlineExceeded):
			kind = comm.ErrTimeout
		}
		return &comm.Response{Err: err.Error(), Kind: kind}
	}
	switch req.Op {
	case comm.OpPing:
		return &comm.Response{}
	case comm.OpSchema:
		scs, err := g.ExportSchemas()
		if err != nil {
			return fail(err)
		}
		return &comm.Response{Schemas: scs}
	case comm.OpStats:
		ts, err := g.Stats(req.Table)
		if err != nil {
			return fail(err)
		}
		return &comm.Response{Stats: ts}
	case comm.OpQuery:
		rs, err := g.Query(ctx, req.TxnID, req.SQL)
		if err != nil {
			return fail(err)
		}
		return &comm.Response{Rows: rs}
	case comm.OpExplain:
		out, err := g.Explain(ctx, req.SQL)
		if err != nil {
			return fail(err)
		}
		rs := &schema.ResultSet{Columns: []string{"access"}}
		for _, line := range strings.Split(out, "\n") {
			rs.Rows = append(rs.Rows, schema.Row{value.NewText(line)})
		}
		return &comm.Response{Rows: rs}
	case comm.OpExec:
		n, err := g.Exec(ctx, req.TxnID, req.SQL)
		if err != nil {
			return fail(err)
		}
		return &comm.Response{Affected: n}
	case comm.OpBegin:
		id, err := g.Begin(ctx, req.GID)
		if err != nil {
			return fail(err)
		}
		return &comm.Response{TxnID: id}
	case comm.OpWaitGraph:
		return &comm.Response{Waits: g.WaitGraph()}
	case comm.OpPrepare:
		if err := g.Prepare(ctx, req.TxnID); err != nil {
			return fail(err)
		}
		return &comm.Response{}
	case comm.OpCommit:
		if err := g.Commit(ctx, req.TxnID); err != nil {
			return fail(err)
		}
		return &comm.Response{}
	case comm.OpAbort:
		if err := g.Abort(ctx, req.TxnID); err != nil {
			return fail(err)
		}
		return &comm.Response{}
	default:
		return fail(fmt.Errorf("gateway %s: unknown op %q", g.site, req.Op))
	}
}

package gateway

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"myriad/internal/comm"
	"myriad/internal/schema"
	"myriad/internal/storage"
)

// Conn is the federation's view of a component site. Two
// implementations exist: LocalConn calls the gateway in-process (used by
// tests and the E6 transport baseline) and RemoteConn speaks the comm
// protocol over TCP (the deployment the paper describes).
type Conn interface {
	Site() string
	ExportSchemas(ctx context.Context) ([]*schema.Schema, error)
	Stats(ctx context.Context, export string) (*storage.TableStats, error)
	// Explain renders the access path the site's engine would choose
	// for a canonical SELECT (per base relation: heap / hash probe /
	// ordered range / pk point, with selectivity estimates). Planning
	// only; nothing executes at the site.
	Explain(ctx context.Context, sql string) (string, error)
	Query(ctx context.Context, txn uint64, sql string) (*schema.ResultSet, error)
	// QueryStream runs a canonical SELECT and returns the result as a
	// row stream: batches pipeline from the site while the federation
	// consumes, and closing the stream early terminates the remote scan.
	QueryStream(ctx context.Context, txn uint64, sql string) (schema.RowStream, error)
	Exec(ctx context.Context, txn uint64, sql string) (int, error)
	// Begin opens a transaction branch on behalf of global transaction
	// gid (0 = no global transaction). The site tags the branch's locks
	// with the gid so its waits-for edges carry the branch→global
	// mapping the coordinator's deadlock detector stitches on.
	Begin(ctx context.Context, gid uint64) (uint64, error)
	Prepare(ctx context.Context, txn uint64) error
	Commit(ctx context.Context, txn uint64) error
	Abort(ctx context.Context, txn uint64) error
	// WaitGraph snapshots the site's live lock waits-for edges.
	WaitGraph(ctx context.Context) ([]comm.WaitEdge, error)
	Close() error
}

// LocalConn adapts a Gateway to the Conn interface without a wire.
type LocalConn struct {
	G *Gateway
}

var _ Conn = (*LocalConn)(nil)

// Site returns the gateway's site name.
func (c *LocalConn) Site() string { return c.G.Site() }

// ExportSchemas lists the gateway's export relations.
func (c *LocalConn) ExportSchemas(ctx context.Context) ([]*schema.Schema, error) {
	return c.G.ExportSchemas()
}

// Stats fetches optimizer statistics for an export.
func (c *LocalConn) Stats(ctx context.Context, export string) (*storage.TableStats, error) {
	return c.G.Stats(export)
}

// Explain renders the site engine's chosen access paths for sql.
func (c *LocalConn) Explain(ctx context.Context, sql string) (string, error) {
	return c.G.Explain(ctx, sql)
}

// Query runs a canonical SELECT at the site.
func (c *LocalConn) Query(ctx context.Context, txn uint64, sql string) (*schema.ResultSet, error) {
	return c.G.Query(ctx, txn, sql)
}

// QueryStream runs a canonical SELECT at the site, streaming rows
// straight from the gateway's iterator pipeline (no wire, no copy).
func (c *LocalConn) QueryStream(ctx context.Context, txn uint64, sql string) (schema.RowStream, error) {
	return c.G.QueryStream(ctx, txn, sql)
}

// Exec runs canonical DML at the site.
func (c *LocalConn) Exec(ctx context.Context, txn uint64, sql string) (int, error) {
	return c.G.Exec(ctx, txn, sql)
}

// Begin opens a transaction branch for global transaction gid.
func (c *LocalConn) Begin(ctx context.Context, gid uint64) (uint64, error) {
	return c.G.Begin(ctx, gid)
}

// WaitGraph snapshots the site's live lock waits-for edges.
func (c *LocalConn) WaitGraph(ctx context.Context) ([]comm.WaitEdge, error) {
	return c.G.WaitGraph(), nil
}

// Prepare votes in 2PC phase one.
func (c *LocalConn) Prepare(ctx context.Context, txn uint64) error { return c.G.Prepare(ctx, txn) }

// Commit applies 2PC phase two.
func (c *LocalConn) Commit(ctx context.Context, txn uint64) error { return c.G.Commit(ctx, txn) }

// Abort rolls the branch back.
func (c *LocalConn) Abort(ctx context.Context, txn uint64) error { return c.G.Abort(ctx, txn) }

// Close is a no-op for in-process connections.
func (c *LocalConn) Close() error { return nil }

// RemoteConn speaks the gateway protocol over TCP.
type RemoteConn struct {
	site   string
	client *comm.Client
}

var _ Conn = (*RemoteConn)(nil)

// DialRemote connects to a gatewayd at addr with a connection pool.
func DialRemote(site, addr string, poolSize int) *RemoteConn {
	return &RemoteConn{site: site, client: comm.Dial(addr, poolSize)}
}

// Site returns the remote site's name.
func (c *RemoteConn) Site() string { return c.site }

func (c *RemoteConn) do(ctx context.Context, req *comm.Request) (*comm.Response, error) {
	resp, err := c.client.Do(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("gateway %s: %w", c.site, err)
	}
	if err := resp.AsError(); err != nil {
		return nil, c.wireErr(err)
	}
	return resp, nil
}

// wireErr maps a wire-level error into the gateway error vocabulary,
// surfacing remote timeouts as ErrTimeout (presumed global deadlock)
// and remote wounds as ErrWounded (chosen deadlock victim).
func (c *RemoteConn) wireErr(err error) error {
	if errors.Is(err, comm.TimeoutError) {
		return fmt.Errorf("%w: site %s: %v", ErrTimeout, c.site, err)
	}
	if errors.Is(err, comm.WoundedError) {
		return fmt.Errorf("%w: site %s: %v", ErrWounded, c.site, err)
	}
	return fmt.Errorf("gateway %s: %w", c.site, err)
}

// ExportSchemas lists the remote gateway's export relations.
func (c *RemoteConn) ExportSchemas(ctx context.Context) ([]*schema.Schema, error) {
	resp, err := c.do(ctx, &comm.Request{Op: comm.OpSchema})
	if err != nil {
		return nil, err
	}
	return resp.Schemas, nil
}

// Stats fetches optimizer statistics for an export.
func (c *RemoteConn) Stats(ctx context.Context, export string) (*storage.TableStats, error) {
	resp, err := c.do(ctx, &comm.Request{Op: comm.OpStats, Table: export})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Explain asks the remote gateway for its engine's chosen access
// paths (one text row per base relation, joined back into lines).
func (c *RemoteConn) Explain(ctx context.Context, sql string) (string, error) {
	resp, err := c.do(ctx, &comm.Request{Op: comm.OpExplain, SQL: sql})
	if err != nil {
		return "", err
	}
	var lines []string
	if resp.Rows != nil {
		for _, r := range resp.Rows.Rows {
			if len(r) > 0 {
				lines = append(lines, r[0].Text())
			}
		}
	}
	return strings.Join(lines, "\n"), nil
}

// Query runs a canonical SELECT at the remote site.
func (c *RemoteConn) Query(ctx context.Context, txn uint64, sql string) (*schema.ResultSet, error) {
	resp, err := c.do(ctx, &comm.Request{Op: comm.OpQuery, TxnID: txn, SQL: sql})
	if err != nil {
		return nil, err
	}
	if resp.Rows == nil {
		resp.Rows = &schema.ResultSet{}
	}
	return resp.Rows, nil
}

// QueryStream runs a canonical SELECT at the remote site over the
// streaming frame protocol: the gateway pipelines row batches as its
// scan produces them, and closing the returned stream before exhaustion
// half-closes the connection, which tears the remote scan down.
func (c *RemoteConn) QueryStream(ctx context.Context, txn uint64, sql string) (schema.RowStream, error) {
	st, err := c.client.DoStream(ctx, &comm.Request{Op: comm.OpQuery, TxnID: txn, SQL: sql})
	if err != nil {
		return nil, c.wireErr(err)
	}
	return st.AsRowStream(c.wireErr), nil
}

// Exec runs canonical DML at the remote site.
func (c *RemoteConn) Exec(ctx context.Context, txn uint64, sql string) (int, error) {
	resp, err := c.do(ctx, &comm.Request{Op: comm.OpExec, TxnID: txn, SQL: sql})
	if err != nil {
		return 0, err
	}
	return resp.Affected, nil
}

// Begin opens a transaction branch at the remote site on behalf of
// global transaction gid.
func (c *RemoteConn) Begin(ctx context.Context, gid uint64) (uint64, error) {
	resp, err := c.do(ctx, &comm.Request{Op: comm.OpBegin, GID: gid})
	if err != nil {
		return 0, err
	}
	return resp.TxnID, nil
}

// WaitGraph snapshots the remote site's live lock waits-for edges.
func (c *RemoteConn) WaitGraph(ctx context.Context) ([]comm.WaitEdge, error) {
	resp, err := c.do(ctx, &comm.Request{Op: comm.OpWaitGraph})
	if err != nil {
		return nil, err
	}
	return resp.Waits, nil
}

// Prepare votes in 2PC phase one.
func (c *RemoteConn) Prepare(ctx context.Context, txn uint64) error {
	_, err := c.do(ctx, &comm.Request{Op: comm.OpPrepare, TxnID: txn})
	return err
}

// Commit applies 2PC phase two.
func (c *RemoteConn) Commit(ctx context.Context, txn uint64) error {
	_, err := c.do(ctx, &comm.Request{Op: comm.OpCommit, TxnID: txn})
	return err
}

// Abort rolls the branch back.
func (c *RemoteConn) Abort(ctx context.Context, txn uint64) error {
	_, err := c.do(ctx, &comm.Request{Op: comm.OpAbort, TxnID: txn})
	return err
}

// Close tears down the connection pool.
func (c *RemoteConn) Close() error { return c.client.Close() }

// Package comm is MYRIAD's communication substrate: gob-encoded
// messages over pooled TCP connections. It plays the role of the
// BSD-socket message layer in the 1994 prototype, extended with a
// streaming row-batch transport the original lacked.
//
// Two exchange shapes share each connection:
//
//   - Request/Response: one synchronous round trip (Client.Do), used
//     for control operations (ping, schema, stats, transactions, DML).
//   - Request/Frame-stream: a Stream=true request (Client.DoStream) is
//     answered by a header frame (columns), gob-encoded row batches,
//     and a trailer (error + row count), letting query results pipeline
//     site → federation → client without materializing. See PROTOCOL.md.
//
// The same Request serves the gateway protocol (federation to component
// DBMS) and the federation's client protocol; which fields are
// populated depends on Op.
package comm

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"myriad/internal/schema"
	"myriad/internal/storage"
)

// Op identifies a request type.
type Op string

// Gateway and federation protocol operations.
const (
	OpPing    Op = "ping"
	OpSchema  Op = "schema"  // list export relations
	OpStats   Op = "stats"   // table statistics for one export
	OpQuery   Op = "query"   // SELECT (optionally inside a transaction)
	OpExec    Op = "exec"    // DML/DDL (optionally inside a transaction)
	OpBegin   Op = "begin"   // open a transaction branch
	OpPrepare Op = "prepare" // 2PC phase one
	OpCommit  Op = "commit"  // 2PC phase two (or one-phase commit)
	OpAbort   Op = "abort"   // rollback

	// Federation-protocol extensions (myriadd <-> myriadctl/clients).
	OpExplain Op = "explain" // render the plan for SQL
	OpDefine  Op = "define"  // install an integrated relation (JSON in SQL field)
	OpDrop    Op = "drop"    // remove an integrated relation (name in Table)
	OpCatalog Op = "catalog" // render the federation catalog
	OpExecAt  Op = "execat"  // DML at one site inside a global txn (site in Table)
	// OpTxnStatus asks the federation coordinator for a prepared
	// branch's outcome (site in Table, branch id in TxnID); the answer
	// — commit/abort/pending — rides Response.Status. Recovering sites
	// use it to resolve in-doubt branches before releasing locks.
	OpTxnStatus Op = "txnstatus"
	// OpWaitGraph snapshots live lock waits-for edges as
	// Response.Waits. Against a gateway it returns the site's local
	// edges (the coordinator's deadlock detector pulls these every
	// tick); against a federation server it returns the stitched
	// edges of every reachable site.
	OpWaitGraph Op = "waitgraph"
)

// Request is one protocol message from client to server.
type Request struct {
	Op        Op
	TxnID     uint64 // 0 means autocommit
	SQL       string
	Table     string // for OpStats
	TimeoutMs int64  // per-request server-side timeout (0 = none)
	// Stream requests a frame-sequence response (header, row batches,
	// trailer) instead of a single Response; see Client.DoStream.
	Stream bool
	// GID carries the owning global transaction's id on OpBegin (0 =
	// no global transaction), giving the site the branch→global
	// mapping its waits-for edges report back.
	GID uint64
}

// ErrKind discriminates error causes across the wire.
type ErrKind string

// Error kinds carried in responses.
const (
	ErrNone    ErrKind = ""
	ErrGeneric ErrKind = "error"
	ErrTimeout ErrKind = "timeout" // lock/deadline expiry: presumed deadlock
	ErrInDoubt ErrKind = "indoubt" // commit decided but not acknowledged everywhere
	ErrWounded ErrKind = "wounded" // chosen as deadlock victim; abort and retry
)

// WaitEdge is one live waits-for edge reported by a site: branch
// Waiter has been blocked on Resource for WaitMs milliseconds behind
// the Holders branches. WaiterGID/HolderGIDs carry the global
// transaction ids of global branches (0 = purely local), the key the
// coordinator stitches per-site edges on. Durations travel as elapsed
// milliseconds, not timestamps, so sites need no clock agreement.
type WaitEdge struct {
	Waiter     uint64
	WaiterGID  uint64
	Holders    []uint64
	HolderGIDs []uint64
	Resource   string
	WaitMs     int64
}

// Response is one protocol message from server to client.
type Response struct {
	Err      string
	Kind     ErrKind
	TxnID    uint64
	Rows     *schema.ResultSet
	Affected int
	Schemas  []*schema.Schema
	Stats    *storage.TableStats
	Status   string     // OpTxnStatus: commit | abort | pending
	Waits    []WaitEdge // OpWaitGraph: live waits-for edges
}

// TimeoutError is the client-side representation of a server-reported
// timeout (presumed deadlock, per the paper's resolution policy).
var TimeoutError = errors.New("comm: remote timeout (presumed deadlock)")

// InDoubtError is the client-side representation of a server-reported
// in-doubt commit: the decision is durable and WILL be applied, but not
// every participant had acknowledged it when the reply was sent.
var InDoubtError = errors.New("comm: commit in doubt (decision logged, acknowledgement pending)")

// WoundedError is the client-side representation of a server-reported
// wound: the transaction was chosen as a deadlock victim (by the
// wound-wait fast path or the coordinator's detector), must abort, and
// may be retried under a fresh global id.
var WoundedError = errors.New("comm: transaction wounded (deadlock victim, retry)")

// socketBufferBytes fixes SO_RCVBUF/SO_SNDBUF on every protocol
// connection. A fixed window turns the transport's backpressure into
// hard TCP flow control: a streaming producer can never outrun a
// paused consumer by more than this, and — the reason it exists — it
// disables kernel receive-buffer autotuning, which under bursty
// row-batch streams can balloon the advertised window past what the
// host tolerates and then prune the receive queue, dropping segments
// and stalling the stream on ~200ms retransmission timeouts.
const socketBufferBytes = 256 << 10

func tuneConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(socketBufferBytes)  //nolint:errcheck
		tc.SetWriteBuffer(socketBufferBytes) //nolint:errcheck
	}
}

// AsError converts a Response's error fields into a Go error.
func (r *Response) AsError() error {
	switch r.Kind {
	case ErrNone:
		return nil
	case ErrTimeout:
		return fmt.Errorf("%w: %s", TimeoutError, r.Err)
	case ErrInDoubt:
		return fmt.Errorf("%w: %s", InDoubtError, r.Err)
	case ErrWounded:
		return fmt.Errorf("%w: %s", WoundedError, r.Err)
	default:
		return errors.New(r.Err)
	}
}

// Handler serves decoded requests. Implementations must be safe for
// concurrent use.
type Handler interface {
	Handle(ctx context.Context, req *Request) *Response
}

// Server accepts connections and pumps the request/response loop.
type Server struct {
	handler Handler

	// BatchRows caps rows per streaming batch frame (0 = DefaultBatchRows).
	// Set before Listen.
	BatchRows int

	// StreamWriteTimeout is the per-frame write progress deadline for
	// streaming responses (0 = DefaultStreamWriteTimeout; negative
	// disables). It bounds how long a dead client that stopped reading
	// can keep a handler — and the scan locks behind it — alive.
	StreamWriteTimeout time.Duration

	mu    sync.Mutex
	ln    net.Listener
	wg    sync.WaitGroup
	conns map[net.Conn]bool

	// baseCtx parents every request context and is canceled by Close,
	// so a handler parked inside the engine (a lock wait, a stalled
	// scan) cannot hold shutdown hostage for its full timeout.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	closed bool
}

// NewServer wraps handler; call Listen (or Serve) to start.
func NewServer(handler Handler) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		handler: handler,
		conns:   make(map[net.Conn]bool),
		baseCtx: ctx, baseCancel: cancel,
	}
}

// Listen binds addr ("host:port"; ":0" picks a free port) and serves in
// the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serve(ln)
	}()
	return ln.Addr().String(), nil
}

func (s *Server) serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		tuneConn(conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		ctx := s.baseCtx
		cancel := func() {}
		if req.TimeoutMs > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		}
		if req.Stream {
			ok := s.serveStream(ctx, &req, conn, enc)
			cancel()
			if !ok {
				return
			}
			continue
		}
		resp := s.handler.Handle(ctx, &req)
		cancel()
		if resp == nil {
			resp = &Response{}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// Close stops accepting, closes active connections, and waits for the
// per-connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.baseCancel()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a connection pool speaking the protocol to one server. It is
// safe for concurrent use; each in-flight request occupies one pooled
// connection.
type Client struct {
	addr string
	pool chan *clientConn
	mu   sync.Mutex
	all  []*clientConn
	shut bool
}

type clientConn struct {
	conn net.Conn
	dec  *gob.Decoder
	enc  *gob.Encoder
}

// Dial creates a client with a pool of up to poolSize connections
// (established lazily).
func Dial(addr string, poolSize int) *Client {
	if poolSize < 1 {
		poolSize = 1
	}
	c := &Client{addr: addr, pool: make(chan *clientConn, poolSize)}
	for i := 0; i < poolSize; i++ {
		c.pool <- nil // lazy slot
	}
	return c
}

func (c *Client) get(ctx context.Context) (*clientConn, error) {
	select {
	case cc := <-c.pool:
		if cc != nil {
			return cc, nil
		}
		d := net.Dialer{}
		conn, err := d.DialContext(ctx, "tcp", c.addr)
		if err != nil {
			c.pool <- nil // return the slot
			return nil, err
		}
		tuneConn(conn)
		cc = &clientConn{conn: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(conn)}
		c.mu.Lock()
		c.all = append(c.all, cc)
		c.mu.Unlock()
		return cc, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// put returns a connection to the pool. broken must be true whenever
// the request/response (or frame) sequence did not complete — in
// particular for a half-consumed stream, whose conn still has batches
// in flight: reusing it would hand stale frames to the next request.
// Broken conns are closed and their slot refreshed lazily.
func (c *Client) put(cc *clientConn, broken bool) {
	if broken {
		cc.conn.Close()
		c.pool <- nil
		return
	}
	cc.conn.SetDeadline(time.Time{}) //nolint:errcheck // clear per-request deadline before reuse
	c.pool <- cc
}

// Do performs one request/response exchange. The context deadline, if
// any, is propagated to the server via TimeoutMs (when not already set)
// and enforced locally on the socket.
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	if dl, ok := ctx.Deadline(); ok && req.TimeoutMs == 0 {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMs = ms
	}
	cc, err := c.get(ctx)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		// Socket deadline slightly beyond the server timeout so the
		// server's own timeout response wins when possible.
		cc.conn.SetDeadline(dl.Add(250 * time.Millisecond)) //nolint:errcheck
	} else {
		cc.conn.SetDeadline(time.Time{}) //nolint:errcheck
	}
	if err := cc.enc.Encode(req); err != nil {
		c.put(cc, true)
		return nil, fmt.Errorf("comm: send to %s: %w", c.addr, err)
	}
	var resp Response
	if err := cc.dec.Decode(&resp); err != nil {
		c.put(cc, true)
		return nil, fmt.Errorf("comm: receive from %s: %w", c.addr, err)
	}
	c.put(cc, false)
	return &resp, nil
}

// Close tears down every pooled connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shut {
		return nil
	}
	c.shut = true
	for _, cc := range c.all {
		cc.conn.Close()
	}
	return nil
}

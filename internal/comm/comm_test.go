package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"myriad/internal/schema"
	"myriad/internal/value"
)

// echoHandler answers ping, echoes SQL back as a one-cell result, and
// simulates slow queries and timeouts.
type echoHandler struct{}

func (echoHandler) Handle(ctx context.Context, req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{}
	case OpQuery:
		if req.SQL == "slow" {
			select {
			case <-time.After(2 * time.Second):
			case <-ctx.Done():
				return &Response{Err: "query timed out", Kind: ErrTimeout}
			}
		}
		return &Response{Rows: &schema.ResultSet{
			Columns: []string{"echo"},
			Rows:    []schema.Row{{value.NewText(req.SQL)}},
		}}
	case OpExec:
		return &Response{Affected: len(req.SQL)}
	default:
		return &Response{Err: fmt.Sprintf("bad op %q", req.Op), Kind: ErrGeneric}
	}
}

func startServer(t *testing.T) (string, *Server) {
	t.Helper()
	srv := NewServer(echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	return addr, srv
}

func TestRequestResponse(t *testing.T) {
	addr, _ := startServer(t)
	c := Dial(addr, 2)
	defer c.Close()

	resp, err := c.Do(context.Background(), &Request{Op: OpQuery, SQL: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.AsError(); err != nil {
		t.Fatal(err)
	}
	if resp.Rows.Rows[0][0].Text() != "hello" {
		t.Errorf("echo = %v", resp.Rows.Rows[0][0])
	}

	resp, err = c.Do(context.Background(), &Request{Op: OpExec, SQL: "12345"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Affected != 5 {
		t.Errorf("affected = %d", resp.Affected)
	}
}

func TestErrorKinds(t *testing.T) {
	addr, _ := startServer(t)
	c := Dial(addr, 1)
	defer c.Close()

	resp, err := c.Do(context.Background(), &Request{Op: "nope"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.AsError() == nil {
		t.Error("generic error lost")
	}

	// Server-side timeout surfaces as TimeoutError.
	resp, err = c.Do(context.Background(), &Request{Op: OpQuery, SQL: "slow", TimeoutMs: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.AsError(), TimeoutError) {
		t.Errorf("want TimeoutError, got %v", resp.AsError())
	}
}

func TestContextDeadlinePropagates(t *testing.T) {
	addr, _ := startServer(t)
	c := Dial(addr, 1)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp, err := c.Do(ctx, &Request{Op: OpQuery, SQL: "slow"})
	elapsed := time.Since(start)
	if err != nil {
		// Socket deadline fired; acceptable but should be fast.
		if elapsed > time.Second {
			t.Fatalf("deadline not enforced: %v", elapsed)
		}
		return
	}
	if !errors.Is(resp.AsError(), TimeoutError) {
		t.Errorf("want timeout, got %v after %v", resp.AsError(), elapsed)
	}
	if elapsed > time.Second {
		t.Errorf("timeout enforcement took %v", elapsed)
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, _ := startServer(t)
	c := Dial(addr, 4)
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sql := fmt.Sprintf("msg-%d", i)
			resp, err := c.Do(context.Background(), &Request{Op: OpQuery, SQL: sql})
			if err != nil {
				errs <- err
				return
			}
			if got := resp.Rows.Rows[0][0].Text(); got != sql {
				errs <- fmt.Errorf("response mismatch: %q != %q (cross-talk?)", got, sql)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestValuesSurviveGob(t *testing.T) {
	addr, _ := startServer(t)
	c := Dial(addr, 1)
	defer c.Close()
	// Round-trip a string containing every tricky character class.
	payload := "nul=\x01 quote=' unicode=héllo 漢字 tab=\t"
	resp, err := c.Do(context.Background(), &Request{Op: OpQuery, SQL: payload})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Rows.Rows[0][0].Text(); got != payload {
		t.Errorf("payload corrupted: %q", got)
	}
}

func TestServerClose(t *testing.T) {
	srv := NewServer(echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr, 1)
	if _, err := c.Do(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	c.Close()

	// New connections fail after close.
	c2 := Dial(addr, 1)
	defer c2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := c2.Do(ctx, &Request{Op: OpPing}); err == nil {
		t.Error("request succeeded after server close")
	}
}

// TestCloseCancelsParkedHandler: a handler blocked inside the engine —
// here the "slow" query with no timeout, standing in for a statement
// parked on a lock — must not hold Close hostage: the server cancels
// in-flight request contexts so shutdown (and the crash harness's
// kill -9 simulation) returns promptly.
func TestCloseCancelsParkedHandler(t *testing.T) {
	srv := NewServer(echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr, 1)
	defer c.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(context.Background(), &Request{Op: OpQuery, SQL: "slow"}) //nolint:errcheck
	}()
	time.Sleep(50 * time.Millisecond) // let the request park server-side
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close blocked %v behind a parked handler", elapsed)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("parked request never returned after server close")
	}
}

func TestDialLazyAndBrokenConnRecovery(t *testing.T) {
	// Dialing a dead address fails only at Do time.
	c := Dial("127.0.0.1:1", 1)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := c.Do(ctx, &Request{Op: OpPing}); err == nil {
		t.Error("Do against dead address succeeded")
	}
	// The pool slot is returned; a later Do against a live server works.
	addr, _ := startServer(t)
	c2 := Dial(addr, 1)
	defer c2.Close()
	if _, err := c2.Do(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
}

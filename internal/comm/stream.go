package comm

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"myriad/internal/schema"
)

// The streaming response protocol: a Request with Stream=true is
// answered not by one Response but by a sequence of gob-encoded Frames
// on the same connection — one header (column names), zero or more row
// batches, and exactly one trailer (error + row count). See PROTOCOL.md
// for the wire contract.

// FrameKind discriminates streaming frames.
type FrameKind uint8

// Streaming frame kinds.
const (
	FrameHeader  FrameKind = 1 // first frame: column names
	FrameBatch   FrameKind = 2 // up to BatchRows rows
	FrameTrailer FrameKind = 3 // last frame: error + total row count
)

// DefaultBatchRows is how many rows a server packs per batch frame when
// no explicit batch size is configured: large enough to amortize gob
// framing, small enough that the first batch flushes quickly and a
// LIMIT 10 never drags hundreds of rows over the wire.
const DefaultBatchRows = 256

// Frame is one message of a streaming response.
type Frame struct {
	Kind    FrameKind
	Columns []string     // header
	Rows    []schema.Row // batch
	Err     string       // trailer
	ErrKind ErrKind      // trailer
	Count   int          // trailer: rows sent in the whole stream
}

// ErrNotStreamable is returned by a StreamHandler that cannot stream
// the given request; the server falls back to running Handle and
// framing its materialized Response.
var ErrNotStreamable = errors.New("comm: request is not streamable")

// KindError tags an error with the wire ErrKind a streaming trailer
// should carry (handlers use it to report timeouts across the wire).
type KindError struct {
	Kind ErrKind
	Err  error
}

func (e *KindError) Error() string { return e.Err.Error() }

// Unwrap exposes the tagged error to errors.Is/As.
func (e *KindError) Unwrap() error { return e.Err }

// DefaultStreamWriteTimeout bounds how long a streaming response may go
// without write progress: each frame write must complete within it. A slow
// consumer that keeps draining (backpressure) always makes progress; a
// dead or wedged client that stops reading trips the deadline, failing
// the write so the handler tears its scan down and releases locks
// instead of pinning them until the TCP connection dies.
const DefaultStreamWriteTimeout = 2 * time.Minute

// kindOf maps a handler error to the trailer's ErrKind.
func kindOf(err error) ErrKind {
	var ke *KindError
	if errors.As(err, &ke) {
		return ke.Kind
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrTimeout
	}
	return ErrGeneric
}

// RowSink receives a streaming response as it is produced. Header must
// be called exactly once before any Row. Both return an error when the
// client is gone; the handler should stop producing.
type RowSink interface {
	Header(columns []string) error
	Row(row schema.Row) error
}

// StreamHandler is implemented by handlers that can produce a query
// result incrementally. The server writes the trailer itself from the
// returned error (wrap with KindError to control the wire error kind);
// returning ErrNotStreamable falls back to Handle + framed Response.
type StreamHandler interface {
	Handler
	HandleStream(ctx context.Context, req *Request, sink RowSink) error
}

// ---------------------------------------------------------------------
// Server side: frameWriter drives a gob encoder as a RowSink.

type frameWriter struct {
	enc       encoder
	batchRows int
	// conn and writeTimeout arm a per-frame write deadline: every frame
	// must reach the kernel within writeTimeout or the write fails and
	// the handler tears down (a scan must not hold its locks hostage to
	// a client that stopped reading). Zero conn/timeout disables it.
	conn         net.Conn
	writeTimeout time.Duration

	buf        []schema.Row
	count      int
	headerSent bool
	writeErr   error // transport failure: the conn is dead
}

// encoder is the subset of gob.Encoder the writer needs (swappable in
// tests and the fuzzer).
type encoder interface {
	Encode(v any) error
}

func newFrameWriter(enc encoder, batchRows int) *frameWriter {
	if batchRows <= 0 {
		batchRows = DefaultBatchRows
	}
	return &frameWriter{enc: enc, batchRows: batchRows}
}

// encode writes one frame under the progress deadline.
func (w *frameWriter) encode(f *Frame) error {
	if w.conn != nil && w.writeTimeout > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(w.writeTimeout)) //nolint:errcheck
	}
	return w.enc.Encode(f)
}

func (w *frameWriter) Header(columns []string) error {
	if w.writeErr != nil {
		return w.writeErr
	}
	if w.headerSent {
		return errors.New("comm: stream header sent twice")
	}
	w.headerSent = true
	if err := w.encode(&Frame{Kind: FrameHeader, Columns: columns}); err != nil {
		w.writeErr = err
		return err
	}
	return nil
}

func (w *frameWriter) Row(row schema.Row) error {
	if w.writeErr != nil {
		return w.writeErr
	}
	if !w.headerSent {
		return errors.New("comm: stream row before header")
	}
	w.buf = append(w.buf, row)
	if len(w.buf) >= w.batchRows {
		return w.flush()
	}
	return nil
}

func (w *frameWriter) flush() error {
	if len(w.buf) == 0 {
		return w.writeErr
	}
	frame := &Frame{Kind: FrameBatch, Rows: w.buf}
	err := w.encode(frame)
	if err == nil {
		// Count only what actually went out: an error trailer may
		// supersede a pending batch, and its Count must not include
		// rows that were buffered but never sent.
		w.count += len(w.buf)
	}
	w.buf = w.buf[:0]
	if err != nil {
		w.writeErr = err
	}
	return err
}

// finish flushes pending rows and writes the trailer. A handler error
// supersedes a pending-batch flush error (both mean the same dead conn).
func (w *frameWriter) finish(handlerErr error) error {
	if handlerErr == nil {
		if err := w.flush(); err != nil {
			return err
		}
	}
	t := &Frame{Kind: FrameTrailer, Count: w.count}
	if handlerErr != nil {
		t.Err = handlerErr.Error()
		t.ErrKind = kindOf(handlerErr)
	}
	if err := w.encode(t); err != nil {
		w.writeErr = err
		return err
	}
	return nil
}

// serveStream answers one Stream=true request with a frame sequence.
// It returns false when the connection is no longer usable.
func (s *Server) serveStream(ctx context.Context, req *Request, conn net.Conn, enc encoder) bool {
	w := newFrameWriter(enc, s.BatchRows)
	w.conn = conn
	w.writeTimeout = s.StreamWriteTimeout
	if w.writeTimeout == 0 {
		w.writeTimeout = DefaultStreamWriteTimeout
	}
	if w.writeTimeout < 0 {
		w.writeTimeout = 0 // explicit opt-out
	}
	defer conn.SetWriteDeadline(time.Time{}) //nolint:errcheck // the conn is reused for later exchanges
	var herr error
	if sh, ok := s.handler.(StreamHandler); ok {
		herr = sh.HandleStream(ctx, req, w)
	} else {
		herr = ErrNotStreamable
	}
	if errors.Is(herr, ErrNotStreamable) {
		// Materialized fallback: frame the Handle response so plain
		// handlers remain reachable from streaming clients.
		resp := s.handler.Handle(ctx, req)
		if resp == nil {
			resp = &Response{}
		}
		herr = w.frameResponse(resp)
	}
	if w.writeErr != nil {
		return false // client is gone; tear the conn down
	}
	return w.finish(herr) == nil
}

// frameResponse replays a materialized Response as header+batches; its
// error (if any) becomes the trailer via the returned KindError.
func (w *frameWriter) frameResponse(resp *Response) error {
	if resp.Err != "" {
		kind := resp.Kind
		if kind == ErrNone {
			kind = ErrGeneric
		}
		return &KindError{Kind: kind, Err: errors.New(resp.Err)}
	}
	rows := resp.Rows
	if rows == nil {
		rows = &schema.ResultSet{}
	}
	if err := w.Header(rows.Columns); err != nil {
		return nil // transport error; writeErr is set
	}
	for _, r := range rows.Rows {
		if err := w.Row(r); err != nil {
			return nil
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Client side

// Stream is one in-flight streaming response. It owns a pooled
// connection until Close: a fully consumed stream (trailer read)
// returns the connection for reuse; Close before the trailer marks the
// connection broken — a conn with unread frames in flight can never be
// handed to the next request. Not safe for concurrent use.
type Stream struct {
	c  *Client
	cc *clientConn

	cols  []string
	batch []schema.Row
	bpos  int
	count int

	mu       sync.Mutex
	done     bool  // trailer consumed: conn is clean
	err      error // terminal error (trailer error or transport error)
	released bool  // conn handed back (or abandoned) — guards the watcher
	stop     chan struct{}
}

// DoStream sends req with Stream=true and returns the response stream
// after reading its header. The context governs the whole stream: its
// deadline propagates to the server (TimeoutMs) and is enforced on the
// socket; cancelling it aborts the stream and unblocks a pending Next.
func (c *Client) DoStream(ctx context.Context, req *Request) (*Stream, error) {
	req.Stream = true
	if dl, ok := ctx.Deadline(); ok && req.TimeoutMs == 0 {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMs = ms
	}
	cc, err := c.get(ctx)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		cc.conn.SetDeadline(dl.Add(250 * time.Millisecond)) //nolint:errcheck
	} else {
		cc.conn.SetDeadline(time.Time{}) //nolint:errcheck
	}
	if err := cc.enc.Encode(req); err != nil {
		c.put(cc, true)
		return nil, fmt.Errorf("comm: send to %s: %w", c.addr, err)
	}
	st := &Stream{c: c, cc: cc, stop: make(chan struct{})}
	go st.watch(ctx)

	var first Frame
	if err := cc.dec.Decode(&first); err != nil {
		st.fail(fmt.Errorf("comm: receive from %s: %w", c.addr, err))
		st.Close()
		return nil, st.err
	}
	switch first.Kind {
	case FrameHeader:
		st.cols = first.Columns
		return st, nil
	case FrameTrailer:
		// Error before the header (or an empty degenerate stream).
		st.consumeTrailer(&first)
		err := st.err
		st.Close()
		if err == nil {
			err = errors.New("comm: stream ended before header")
		}
		return nil, err
	default:
		st.fail(fmt.Errorf("comm: protocol error: first frame kind %d", first.Kind))
		st.Close()
		return nil, st.err
	}
}

// watch aborts the stream when ctx is cancelled so a blocked Next
// returns instead of hanging; it exits silently once the stream is
// released.
func (s *Stream) watch(ctx context.Context) {
	select {
	case <-ctx.Done():
		s.mu.Lock()
		if !s.released {
			if s.err == nil {
				s.err = ctx.Err()
			}
			// Expire any pending socket read; Close will mark the conn
			// broken since the trailer was not consumed.
			s.cc.conn.SetDeadline(time.Unix(1, 0)) //nolint:errcheck
		}
		s.mu.Unlock()
	case <-s.stop:
	}
}

// Columns returns the column names from the stream header.
func (s *Stream) Columns() []string { return s.cols }

// RowCount reports the server-side row total from the trailer; valid
// once Next has returned (nil, nil).
func (s *Stream) RowCount() int { return s.count }

func (s *Stream) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *Stream) consumeTrailer(f *Frame) {
	s.mu.Lock()
	s.done = true
	s.count = f.Count
	if f.Err != "" && s.err == nil {
		resp := &Response{Err: f.Err, Kind: f.ErrKind}
		s.err = resp.AsError()
	}
	s.mu.Unlock()
}

// Next returns the next row, or (nil, nil) once the trailer has been
// consumed with no error. After an error (server-reported, transport,
// or context cancellation) every subsequent call returns it again.
func (s *Stream) Next() (schema.Row, error) {
	s.mu.Lock()
	err, done, released := s.err, s.done, s.released
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if done || released {
		return nil, nil
	}
	for s.bpos >= len(s.batch) {
		var f Frame
		if err := s.cc.dec.Decode(&f); err != nil {
			s.fail(fmt.Errorf("comm: receive from %s: %w", s.c.addr, err))
			s.mu.Lock()
			err = s.err
			s.mu.Unlock()
			return nil, err
		}
		switch f.Kind {
		case FrameBatch:
			s.batch, s.bpos = f.Rows, 0
		case FrameTrailer:
			s.consumeTrailer(&f)
			s.mu.Lock()
			err := s.err
			s.mu.Unlock()
			return nil, err
		default:
			s.fail(fmt.Errorf("comm: protocol error: frame kind %d mid-stream", f.Kind))
			return nil, s.err
		}
	}
	r := s.batch[s.bpos]
	s.bpos++
	return r, nil
}

// AsRowStream adapts the stream to schema.RowStream. errMap, when
// non-nil, translates wire errors into the caller's vocabulary. The
// per-call ctx is checked between rows; a blocked wire read is
// unblocked by the DoStream context (watched at the comm layer).
func (s *Stream) AsRowStream(errMap func(error) error) schema.RowStream {
	return &rowStreamAdapter{st: s, errMap: errMap}
}

type rowStreamAdapter struct {
	st     *Stream
	errMap func(error) error
}

func (a *rowStreamAdapter) Columns() []string { return a.st.Columns() }

func (a *rowStreamAdapter) Next(ctx context.Context) (schema.Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := a.st.Next()
	if err != nil {
		if a.errMap != nil {
			err = a.errMap(err)
		}
		return nil, err
	}
	return r, nil
}

func (a *rowStreamAdapter) Close() error { return a.st.Close() }

// Close releases the stream's connection. A stream whose trailer was
// consumed releases a clean connection back to the pool; a half-consumed
// stream's connection still has frames in flight and is closed instead
// (the pool slot refreshes lazily). Idempotent.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		return nil
	}
	s.released = true
	// A server-reported trailer error still ends with a fully drained
	// frame sequence: the conn itself is in sync and reusable. Anything
	// short of a consumed trailer leaves frames in flight — broken.
	clean := s.done
	close(s.stop)
	s.mu.Unlock()
	s.c.put(s.cc, !clean)
	return nil
}

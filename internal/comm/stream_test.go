package comm

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"myriad/internal/schema"
	"myriad/internal/value"
)

// streamHandler serves OpQuery as a row stream. SQL encodes the script:
// "rows:N" emits N rows, "rows:N:err" fails after N rows, "rows:N:slow"
// sleeps between rows until the context dies, "rows:N:timeout" fails
// after N rows with a timeout-kind error. Other ops fall back to the
// echo handler.
type streamHandler struct {
	echoHandler
	started  atomic.Int64
	finished atomic.Int64
}

func (h *streamHandler) HandleStream(ctx context.Context, req *Request, sink RowSink) error {
	if req.Op != OpQuery || !strings.HasPrefix(req.SQL, "rows:") {
		return ErrNotStreamable
	}
	h.started.Add(1)
	defer h.finished.Add(1)
	parts := strings.Split(req.SQL, ":")
	n, _ := strconv.Atoi(parts[1])
	mode := ""
	if len(parts) > 2 {
		mode = parts[2]
	}
	if err := sink.Header([]string{"i", "label"}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if mode == "slow" && i > 0 {
			select {
			case <-time.After(5 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := sink.Row(schema.Row{value.NewInt(int64(i)), value.NewText(fmt.Sprintf("row-%d", i))}); err != nil {
			return err
		}
	}
	switch mode {
	case "err":
		return errors.New("synthetic mid-stream failure")
	case "timeout":
		return &KindError{Kind: ErrTimeout, Err: errors.New("synthetic timeout")}
	}
	return nil
}

func startStreamServer(t *testing.T) (string, *streamHandler) {
	t.Helper()
	h := &streamHandler{}
	srv := NewServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	return addr, h
}

func drainStream(t *testing.T, st *Stream) []schema.Row {
	t.Helper()
	var rows []schema.Row
	for {
		r, err := st.Next()
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		if r == nil {
			return rows
		}
		rows = append(rows, r)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	addr, _ := startStreamServer(t)
	c := Dial(addr, 1)
	defer c.Close()
	ctx := context.Background()

	const n = 1000 // spans several 256-row batches
	st, err := c.DoStream(ctx, &Request{Op: OpQuery, SQL: fmt.Sprintf("rows:%d", n)})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Columns(); len(got) != 2 || got[0] != "i" {
		t.Fatalf("bad header: %v", got)
	}
	rows := drainStream(t, st)
	if len(rows) != n {
		t.Fatalf("got %d rows, want %d", len(rows), n)
	}
	for i, r := range rows {
		if v, _ := r[0].Int(); v != int64(i) {
			t.Fatalf("row %d out of order: %s", i, r[0])
		}
	}
	if st.RowCount() != n {
		t.Fatalf("trailer count %d, want %d", st.RowCount(), n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Fully consumed stream: the (single) pooled conn must be reusable.
	if _, err := c.Do(ctx, &Request{Op: OpPing}); err != nil {
		t.Fatalf("conn not reusable after drained stream: %v", err)
	}
}

// TestEarlyCloseDoesNotPoisonPool is the connection-pool regression: a
// half-consumed stream's conn has batches in flight and must NOT be
// returned to the (size-1) pool, or the next request would read stale
// frames.
func TestEarlyCloseDoesNotPoisonPool(t *testing.T) {
	addr, _ := startStreamServer(t)
	c := Dial(addr, 1)
	defer c.Close()
	ctx := context.Background()

	st, err := c.DoStream(ctx, &Request{Op: OpQuery, SQL: "rows:100000"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The next requests on the same pool must see clean exchanges.
	for i := 0; i < 3; i++ {
		resp, err := c.Do(ctx, &Request{Op: OpQuery, SQL: "hello"})
		if err != nil {
			t.Fatalf("request %d after early close: %v", i, err)
		}
		if len(resp.Rows.Rows) != 1 || resp.Rows.Rows[0][0].Text() != "hello" {
			t.Fatalf("request %d got a stale/foreign response: %+v", i, resp.Rows)
		}
	}
}

func TestStreamServerErrorMidStream(t *testing.T) {
	addr, _ := startStreamServer(t)
	c := Dial(addr, 1)
	defer c.Close()
	ctx := context.Background()

	st, err := c.DoStream(ctx, &Request{Op: OpQuery, SQL: "rows:700:err"})
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	var serr error
	for {
		r, err := st.Next()
		if err != nil {
			serr = err
			break
		}
		if r == nil {
			break
		}
		rows++
	}
	if serr == nil || !strings.Contains(serr.Error(), "synthetic mid-stream failure") {
		t.Fatalf("want synthetic failure after %d rows, got %v", rows, serr)
	}
	// Error arrived in the trailer: the frame sequence is complete and
	// the conn stays clean.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(ctx, &Request{Op: OpPing}); err != nil {
		t.Fatalf("conn not reusable after trailer error: %v", err)
	}
}

func TestStreamTimeoutKindSurvivesTrailer(t *testing.T) {
	addr, _ := startStreamServer(t)
	c := Dial(addr, 1)
	defer c.Close()

	st, err := c.DoStream(context.Background(), &Request{Op: OpQuery, SQL: "rows:5:timeout"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var serr error
	for {
		r, nerr := st.Next()
		if nerr != nil {
			serr = nerr
			break
		}
		if r == nil {
			break
		}
	}
	if !errors.Is(serr, TimeoutError) {
		t.Fatalf("timeout kind lost across the trailer: %v", serr)
	}
}

func TestStreamContextCancellation(t *testing.T) {
	addr, _ := startStreamServer(t)
	c := Dial(addr, 1)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	st, err := c.DoStream(ctx, &Request{Op: OpQuery, SQL: "rows:100000:slow"})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	var serr error
	for {
		r, nerr := st.Next()
		if nerr != nil {
			serr = nerr
			break
		}
		if r == nil {
			break
		}
	}
	if serr == nil {
		t.Fatal("cancelled stream completed successfully")
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("cancellation took %v to unblock Next", since)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The conn was abandoned mid-stream; the pool must recover with a
	// fresh one.
	if _, err := c.Do(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("pool did not recover after cancelled stream: %v", err)
	}
}

// TestStreamFallbackForPlainHandler checks the synthesized frame path:
// a streaming request against a handler without HandleStream (or an op
// it refuses) must still come back as a valid frame sequence.
func TestStreamFallbackForPlainHandler(t *testing.T) {
	addr, _ := startServer(t) // echoHandler only: no StreamHandler
	c := Dial(addr, 1)
	defer c.Close()
	ctx := context.Background()

	st, err := c.DoStream(ctx, &Request{Op: OpQuery, SQL: "framed"})
	if err != nil {
		t.Fatal(err)
	}
	rows := drainStream(t, st)
	if len(rows) != 1 || rows[0][0].Text() != "framed" {
		t.Fatalf("fallback frames wrong: %v", rows)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Error responses must also survive the fallback framing.
	st, err = c.DoStream(ctx, &Request{Op: "nope"})
	if err == nil {
		st.Close()
		t.Fatal("want framed error for bad op")
	}
	if !strings.Contains(err.Error(), "bad op") {
		t.Fatalf("wrong framed error: %v", err)
	}
	if _, err := c.Do(ctx, &Request{Op: OpPing}); err != nil {
		t.Fatalf("conn not reusable after framed error: %v", err)
	}
}

// TestStreamWriteTimeoutFreesServer covers the wedged-client hazard: a
// client that opens a stream and then stops reading (without closing)
// fills the socket buffers and blocks the server's frame writes. The
// per-frame write deadline must fail the write so the handler returns
// (releasing whatever scan locks it held) even though the connection
// is still open.
func TestStreamWriteTimeoutFreesServer(t *testing.T) {
	h := &streamHandler{}
	srv := NewServer(h)
	srv.StreamWriteTimeout = 300 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	c := Dial(addr, 1)
	defer c.Close()

	st, err := c.DoStream(context.Background(), &Request{Op: OpQuery, SQL: "rows:10000000"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	// Read nothing more; keep the conn open. The handler must still
	// finish once the write deadline trips.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if h.finished.Load() == h.started.Load() && h.started.Load() > 0 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server handler still blocked on a wedged client (%d started, %d finished)",
		h.started.Load(), h.finished.Load())
}

// TestStreamTeardownReleasesServer verifies the server-side half of a
// client half-close: once the client abandons a big stream, the
// server's handler must get a write error and return instead of
// producing forever.
func TestStreamTeardownReleasesServer(t *testing.T) {
	addr, h := startStreamServer(t)
	c := Dial(addr, 1)

	st, err := c.DoStream(context.Background(), &Request{Op: OpQuery, SQL: "rows:10000000"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	st.Close() // half-close: conn destroyed with ~10M rows unsent
	c.Close()

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if h.finished.Load() == h.started.Load() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server handler still producing after client half-close (%d started, %d finished)",
		h.started.Load(), h.finished.Load())
}

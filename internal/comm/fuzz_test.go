package comm

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"testing"

	"myriad/internal/schema"
	"myriad/internal/value"
)

// FuzzBatchFraming round-trips a fuzzer-shaped frame sequence (header,
// row batches of every value kind, trailer) through the gob encoder and
// decoder and asserts the decoded stream is identical — the framing
// invariant every streaming query rides on.
func FuzzBatchFraming(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Add([]byte("the quick brown fox"))
	f.Add(bytes.Repeat([]byte{0xff, 0x00, 0x7f}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		frames := framesFrom(data)

		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		for _, fr := range frames {
			if err := enc.Encode(fr); err != nil {
				t.Fatalf("encode: %v", err)
			}
		}

		dec := gob.NewDecoder(&buf)
		for i, want := range frames {
			var got Frame
			if err := dec.Decode(&got); err != nil {
				t.Fatalf("decode frame %d: %v", i, err)
			}
			assertFrameEqual(t, i, want, &got)
		}
		var extra Frame
		if err := dec.Decode(&extra); err != io.EOF {
			t.Fatalf("stream has trailing garbage: %v", err)
		}
	})
}

// framesFrom deterministically shapes the fuzz input into a legal frame
// sequence: every byte steers column counts, batch sizes, value kinds
// and payloads.
func framesFrom(data []byte) []*Frame {
	r := &byteReader{data: data}
	ncols := 1 + int(r.next()%5)
	header := &Frame{Kind: FrameHeader}
	for i := 0; i < ncols; i++ {
		header.Columns = append(header.Columns, fmt.Sprintf("c%d_%d", i, r.next()))
	}
	frames := []*Frame{header}

	nbatches := int(r.next() % 4)
	total := 0
	for b := 0; b < nbatches; b++ {
		nrows := 1 + int(r.next()%8)
		batch := &Frame{Kind: FrameBatch}
		for i := 0; i < nrows; i++ {
			row := make(schema.Row, ncols)
			for c := range row {
				row[c] = fuzzValue(r)
			}
			batch.Rows = append(batch.Rows, row)
			total++
		}
		frames = append(frames, batch)
	}

	trailer := &Frame{Kind: FrameTrailer, Count: total}
	if r.next()%3 == 0 {
		trailer.Err = string(r.take(int(r.next() % 32)))
		trailer.ErrKind = ErrGeneric
		if r.next()%2 == 0 {
			trailer.ErrKind = ErrTimeout
		}
	}
	return append(frames, trailer)
}

func fuzzValue(r *byteReader) value.Value {
	switch r.next() % 5 {
	case 0:
		return value.Null()
	case 1:
		var raw [8]byte
		copy(raw[:], r.take(8))
		return value.NewInt(int64(binary.LittleEndian.Uint64(raw[:])))
	case 2:
		// Finite float from raw bits (NaN would break equality).
		var raw [8]byte
		copy(raw[:], r.take(8))
		return value.NewFloat(float64(int64(binary.LittleEndian.Uint64(raw[:]))) / 257.0)
	case 3:
		return value.NewText(string(r.take(int(r.next() % 24))))
	default:
		return value.NewBool(r.next()%2 == 0)
	}
}

// byteReader yields fuzz bytes, zero-padding past the end.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *byteReader) take(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = r.next()
	}
	return out
}

func assertFrameEqual(t *testing.T, i int, want, got *Frame) {
	t.Helper()
	if got.Kind != want.Kind || got.Count != want.Count || got.Err != want.Err || got.ErrKind != want.ErrKind {
		t.Fatalf("frame %d metadata mismatch: want %+v, got %+v", i, want, got)
	}
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("frame %d: %d columns, want %d", i, len(got.Columns), len(want.Columns))
	}
	for c := range want.Columns {
		if got.Columns[c] != want.Columns[c] {
			t.Fatalf("frame %d column %d: %q != %q", i, c, got.Columns[c], want.Columns[c])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("frame %d: %d rows, want %d", i, len(got.Rows), len(want.Rows))
	}
	for ri := range want.Rows {
		wr, gr := want.Rows[ri], got.Rows[ri]
		if len(gr) != len(wr) {
			t.Fatalf("frame %d row %d: arity %d != %d", i, ri, len(gr), len(wr))
		}
		for ci := range wr {
			wv, gv := wr[ci], gr[ci]
			if wv.K != gv.K || wv.IsNull() != gv.IsNull() || (!wv.IsNull() && wv.Text() != gv.Text()) {
				t.Fatalf("frame %d row %d col %d: %s != %s", i, ri, ci, gv, wv)
			}
		}
	}
}

package planner

import (
	"strings"
	"testing"

	"myriad/internal/sqlparser"
)

func TestAggregatePushdownApplies(t *testing.T) {
	p := New(testCatalog(t), nil)
	plan := mustPlan(t, p,
		`SELECT campus, COUNT(*) AS n, ROUND(AVG(gpa), 2) AS a FROM S WHERE gpa > 1 GROUP BY campus`,
		CostBased)

	sql := scanSQL(plan)
	if !strings.Contains(sql, "GROUP BY") {
		t.Fatalf("scans not grouped:\n%s", sql)
	}
	if !strings.Contains(sql, "COUNT(*)") || !strings.Contains(sql, "SUM(") {
		t.Errorf("partial aggregates missing:\n%s", sql)
	}
	res := sqlparser.FormatStatement(plan.Residual, nil)
	if !strings.Contains(res, "COALESCE(SUM(") {
		t.Errorf("COUNT not merged via SUM:\n%s", res)
	}
	if !strings.Contains(res, "NULLIF(SUM(") {
		t.Errorf("AVG not merged as SUM/COUNT:\n%s", res)
	}
	// WHERE was consumed by the pushdown.
	if strings.Contains(res, "WHERE") {
		t.Errorf("residual still filters aggregated rows:\n%s", res)
	}
	// Temp schema: 1 key + count + avg(sum,cnt) = 4 columns.
	if got := len(plan.ScanSets[0].Schema.Columns); got != 4 {
		t.Errorf("partial temp schema has %d columns:\n%v", got, plan.ScanSets[0].Schema)
	}
}

func TestAggregatePushdownGlobalAggregate(t *testing.T) {
	p := New(testCatalog(t), nil)
	plan := mustPlan(t, p, `SELECT COUNT(*), MIN(gpa), MAX(gpa) FROM S`, CostBased)
	sql := scanSQL(plan)
	if !strings.Contains(sql, "COUNT(*)") || !strings.Contains(sql, "MIN(") {
		t.Fatalf("global aggregate not pushed:\n%s", sql)
	}
	for _, ss := range plan.ScanSets {
		for _, sc := range ss.Scans {
			if sc.EstRows != 1 {
				t.Errorf("global aggregate scan est = %g", sc.EstRows)
			}
		}
	}
}

func TestAggregatePushdownRejections(t *testing.T) {
	p := New(testCatalog(t), nil)
	reject := []struct {
		name string
		sql  string
	}{
		{"join", `SELECT COUNT(*) FROM S s JOIN E e ON s.id = e.sid`},
		{"merge combine", `SELECT COUNT(*) FROM M`},
		{"distinct agg", `SELECT COUNT(DISTINCT name) FROM S`},
		{"non-column group", `SELECT COUNT(*) FROM S GROUP BY gpa + 1`},
		{"non-pushable where", `SELECT COUNT(*) FROM S WHERE UPPER(ghostfn(name)) = 'X'`},
		{"union", `SELECT COUNT(*) FROM S UNION SELECT COUNT(*) FROM S`},
	}
	for _, c := range reject {
		stmt, err := sqlparser.Parse(c.sql)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := p.Plan(contextBG(), stmt.(*sqlparser.Select), CostBased)
		if err != nil {
			continue // planner rejecting entirely is also fine for bogus funcs
		}
		for _, ss := range plan.ScanSets {
			for _, sc := range ss.Scans {
				if len(sc.Select.GroupBy) > 0 {
					t.Errorf("%s: aggregate pushed where it must not:\n%s", c.name, sc.SQL())
				}
			}
		}
	}
}

func TestAggregatePushdownPreservesLimit(t *testing.T) {
	p := New(testCatalog(t), nil)
	plan := mustPlan(t, p, `SELECT campus, COUNT(*) FROM S GROUP BY campus ORDER BY campus LIMIT 1`, CostBased)
	res := plan.Residual
	if res.Limit == nil || res.Limit.Count != 1 {
		t.Errorf("limit lost: %s", sqlparser.FormatStatement(res, nil))
	}
	if len(res.OrderBy) != 1 {
		t.Errorf("order lost: %s", sqlparser.FormatStatement(res, nil))
	}
}

func TestLimitNotPushedBelowAggregate(t *testing.T) {
	// Regression: LIMIT under a global aggregate would truncate input.
	p := New(testCatalog(t), nil)
	stmt, err := sqlparser.Parse(`SELECT COUNT(*) FROM M LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	// M merges (no aggregate pushdown), so pushLimit is the only risk.
	plan, err := p.Plan(contextBG(), stmt.(*sqlparser.Select), CostBased)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(scanSQL(plan), "LIMIT") {
		t.Errorf("limit pushed below aggregate:\n%s", scanSQL(plan))
	}
}

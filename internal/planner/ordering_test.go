package planner

import (
	"testing"

	"myriad/internal/schema"
)

// TestScanOrderingAnnotation: the pushed-down ORDER BY is declared as
// per-source stream ordering (in schema column indexes) exactly when
// every key is a plain column of the scan set.
func TestScanOrderingAnnotation(t *testing.T) {
	p := New(testCatalog(t), nil)

	// Multi-source top-K pushdown: every source ships sorted.
	plan := mustPlan(t, p, `SELECT id, name FROM S ORDER BY name DESC, id LIMIT 5`, CostBased)
	ss := plan.ScanSets[0]
	// Needed columns are [id, name] in integrated definition order.
	want := []schema.SortKey{{Col: 1, Desc: true}, {Col: 0}}
	if len(ss.ScanOrdering) != len(want) {
		t.Fatalf("ScanOrdering = %v, want %v", ss.ScanOrdering, want)
	}
	for i := range want {
		if ss.ScanOrdering[i] != want[i] {
			t.Fatalf("ScanOrdering = %v, want %v", ss.ScanOrdering, want)
		}
	}

	// Single-source exact pushdown also records the ordering.
	plan = mustPlan(t, p, `SELECT sid FROM E ORDER BY sid LIMIT 3`, CostBased)
	if got := plan.ScanSets[0].ScanOrdering; len(got) != 1 || got[0] != (schema.SortKey{Col: 0}) {
		t.Fatalf("single-source ScanOrdering = %v", got)
	}

	// No ORDER BY: pushdown happens, ordering does not.
	plan = mustPlan(t, p, `SELECT id FROM S LIMIT 5`, CostBased)
	if got := plan.ScanSets[0].ScanOrdering; got != nil {
		t.Fatalf("orderless LIMIT claimed ordering %v", got)
	}

	// Simple strategy never pushes, never orders.
	plan = mustPlan(t, p, `SELECT id FROM S ORDER BY id LIMIT 5`, Simple)
	if got := plan.ScanSets[0].ScanOrdering; got != nil {
		t.Fatalf("simple strategy claimed ordering %v", got)
	}

	// An expression key disables the annotation (the merge cannot
	// compare what the shipped rows do not carry as a column).
	plan = mustPlan(t, p, `SELECT id, gpa FROM S ORDER BY gpa + 1 LIMIT 5`, CostBased)
	if got := plan.ScanSets[0].ScanOrdering; got != nil {
		t.Fatalf("expression ORDER BY claimed ordering %v", got)
	}
}

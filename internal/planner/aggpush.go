package planner

import (
	"fmt"
	"strings"

	"myriad/internal/integration"
	"myriad/internal/schema"
	"myriad/internal/sqlparser"
	"myriad/internal/value"
)

// Aggregate pushdown ("partial aggregation"): for a single-relation
// UNION ALL aggregate query whose filter pushed completely, each source
// computes per-group partial aggregates and the residual merges them —
// shipping one row per group per site instead of every input row. This
// is the classic distributed-aggregation rewrite the paper's
// "full-fledged" optimizer was being built for.
//
// Applicability (conservative, checked in order):
//   - exactly one FROM relation, no joins, no UNION, no DISTINCT
//   - the relation combines by UNION ALL
//   - every WHERE conjunct was pushed to every source
//   - GROUP BY keys are plain columns mapped by every source
//   - every aggregate is COUNT/SUM/AVG/MIN/MAX without DISTINCT, and
//     its argument is mappable at every source

// aggPartial describes how one aggregate call is split.
type aggPartial struct {
	fn  *sqlparser.FuncExpr
	key string // canonical text for matching references
	// cols are the partial-column names in the temp schema (one, or
	// two for AVG: sum then count).
	cols []string
	// merged is the residual expression combining the partials.
	merged sqlparser.Expr
}

// pushAggregates attempts the rewrite; it returns the replacement
// residual SELECT (ok=true) or leaves everything untouched (ok=false).
func (p *Planner) pushAggregates(sel *sqlparser.Select, sets map[string]*ScanSet) (*sqlparser.Select, bool) {
	if len(sets) != 1 || sel.Compound != nil || sel.Distinct || len(sel.Joins) > 0 || len(sel.From) != 1 {
		return nil, false
	}
	var ss *ScanSet
	for _, s := range sets {
		ss = s
	}
	if ss.Def.Combine != integration.UnionAll {
		return nil, false
	}

	// The query must actually aggregate.
	if !selectAggregates(sel) {
		return nil, false
	}

	// Every WHERE conjunct must have pushed to every source (the
	// residual cannot re-filter aggregated rows).
	for _, conj := range sqlparser.SplitConjuncts(sel.Where) {
		alias, ok := singleAlias(conj, sets)
		if !ok || !strings.EqualFold(alias, strings.ToLower(ss.Alias)) {
			return nil, false
		}
		for i := range ss.Def.Sources {
			if _, ok := translateExpr(conj, &ss.Def.Sources[i], ss.Alias); !ok {
				return nil, false
			}
		}
	}

	// Group keys: plain columns of this relation, mapped everywhere.
	type groupKey struct {
		col  string
		expr *sqlparser.ColumnRef
	}
	var keys []groupKey
	for _, g := range sel.GroupBy {
		cr, ok := g.(*sqlparser.ColumnRef)
		if !ok {
			return nil, false
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, ss.Alias) {
			return nil, false
		}
		if ss.Def.ColIndex(cr.Column) < 0 {
			return nil, false
		}
		for i := range ss.Def.Sources {
			if _, ok := ss.Def.Sources[i].MapFold(cr.Column); !ok {
				return nil, false
			}
		}
		keys = append(keys, groupKey{col: cr.Column, expr: cr})
	}

	// Collect unique aggregates from items, HAVING, ORDER BY.
	var partials []*aggPartial
	index := map[string]*aggPartial{}
	okAll := true
	collect := func(e sqlparser.Expr) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			f, isF := x.(*sqlparser.FuncExpr)
			if !isF || !sqlparser.AggregateFuncs[f.Name] {
				return true
			}
			if f.Distinct {
				okAll = false
				return false
			}
			key := sqlparser.FormatExpr(f, nil)
			if _, dup := index[key]; dup {
				return false
			}
			if !f.Star {
				if len(f.Args) != 1 {
					okAll = false
					return false
				}
				// Argument must translate at every source.
				for i := range ss.Def.Sources {
					if _, ok := translateExpr(f.Args[0], &ss.Def.Sources[i], ss.Alias); !ok {
						okAll = false
						return false
					}
				}
			}
			pa := &aggPartial{fn: f, key: key}
			index[key] = pa
			partials = append(partials, pa)
			return false
		})
	}
	for _, it := range sel.Items {
		if it.Star {
			return nil, false // SELECT * with aggregates is malformed anyway
		}
		collect(it.Expr)
	}
	collect(sel.Having)
	for _, o := range sel.OrderBy {
		collect(o.Expr)
	}
	if !okAll || len(partials) == 0 {
		return nil, false
	}

	// Non-aggregate column references outside GROUP BY keys would not
	// exist in the partial temp table; reject those queries.
	inKeys := func(cr *sqlparser.ColumnRef) bool {
		for _, k := range keys {
			if strings.EqualFold(k.col, cr.Column) {
				return true
			}
		}
		return false
	}
	validRefs := true
	checkRefs := func(e sqlparser.Expr) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if f, isF := x.(*sqlparser.FuncExpr); isF && sqlparser.AggregateFuncs[f.Name] {
				return false // column refs inside aggregates are fine
			}
			if cr, isC := x.(*sqlparser.ColumnRef); isC && !inKeys(cr) {
				validRefs = false
			}
			return true
		})
	}
	for _, it := range sel.Items {
		checkRefs(it.Expr)
	}
	checkRefs(sel.Having)
	for _, o := range sel.OrderBy {
		checkRefs(o.Expr)
	}
	if !validRefs {
		return nil, false
	}

	// Build the partial columns and merged expressions.
	temp := &schema.Schema{Table: ss.TempTable}
	for _, k := range keys {
		ci := ss.Def.ColIndex(k.col)
		temp.Columns = append(temp.Columns, schema.Column{
			Name: ss.Def.Columns[ci].Name, Type: ss.Def.Columns[ci].Type})
	}
	for j, pa := range partials {
		switch pa.fn.Name {
		case "COUNT":
			col := fmt.Sprintf("agg_%d", j)
			pa.cols = []string{col}
			temp.Columns = append(temp.Columns, schema.Column{Name: col, Type: schema.TInt})
			// COALESCE keeps COUNT() = 0 over an empty input.
			pa.merged = &sqlparser.FuncExpr{Name: "COALESCE", Args: []sqlparser.Expr{
				&sqlparser.FuncExpr{Name: "SUM", Args: []sqlparser.Expr{&sqlparser.ColumnRef{Column: col}}},
				&sqlparser.Literal{Val: value.NewInt(0)},
			}}
		case "SUM":
			col := fmt.Sprintf("agg_%d", j)
			pa.cols = []string{col}
			temp.Columns = append(temp.Columns, schema.Column{Name: col, Type: schema.TFloat})
			pa.merged = &sqlparser.FuncExpr{Name: "SUM", Args: []sqlparser.Expr{&sqlparser.ColumnRef{Column: col}}}
		case "MIN", "MAX":
			col := fmt.Sprintf("agg_%d", j)
			pa.cols = []string{col}
			t := schema.TFloat
			if cr, ok := pa.fn.Args[0].(*sqlparser.ColumnRef); ok {
				if ci := ss.Def.ColIndex(cr.Column); ci >= 0 {
					t = ss.Def.Columns[ci].Type
				}
			}
			temp.Columns = append(temp.Columns, schema.Column{Name: col, Type: t})
			pa.merged = &sqlparser.FuncExpr{Name: pa.fn.Name, Args: []sqlparser.Expr{&sqlparser.ColumnRef{Column: col}}}
		case "AVG":
			sumCol := fmt.Sprintf("agg_%d_sum", j)
			cntCol := fmt.Sprintf("agg_%d_cnt", j)
			pa.cols = []string{sumCol, cntCol}
			temp.Columns = append(temp.Columns,
				schema.Column{Name: sumCol, Type: schema.TFloat},
				schema.Column{Name: cntCol, Type: schema.TInt})
			pa.merged = &sqlparser.BinaryExpr{
				Op: "/",
				L:  &sqlparser.FuncExpr{Name: "SUM", Args: []sqlparser.Expr{&sqlparser.ColumnRef{Column: sumCol}}},
				R: &sqlparser.FuncExpr{Name: "NULLIF", Args: []sqlparser.Expr{
					&sqlparser.FuncExpr{Name: "SUM", Args: []sqlparser.Expr{&sqlparser.ColumnRef{Column: cntCol}}},
					&sqlparser.Literal{Val: value.NewInt(0)},
				}},
			}
		default:
			return nil, false
		}
	}

	// Rewrite each source scan into a grouped partial query.
	for i, scan := range ss.Scans {
		src := &ss.Def.Sources[i]
		grouped := &sqlparser.Select{
			From:  scan.Select.From,
			Where: scan.Select.Where,
		}
		for _, k := range keys {
			mapped, _ := src.MapFold(k.col)
			e, err := sqlparser.ParseExpr(mapped)
			if err != nil {
				return nil, false
			}
			grouped.Items = append(grouped.Items, sqlparser.SelectItem{Expr: e, As: k.col})
			grouped.GroupBy = append(grouped.GroupBy, e)
		}
		for _, pa := range partials {
			var arg sqlparser.Expr
			if !pa.fn.Star {
				arg, _ = translateExpr(pa.fn.Args[0], src, ss.Alias)
			}
			switch pa.fn.Name {
			case "AVG":
				grouped.Items = append(grouped.Items,
					sqlparser.SelectItem{Expr: &sqlparser.FuncExpr{Name: "SUM", Args: []sqlparser.Expr{arg}}, As: pa.cols[0]},
					sqlparser.SelectItem{Expr: &sqlparser.FuncExpr{Name: "COUNT", Args: []sqlparser.Expr{arg}}, As: pa.cols[1]})
			default:
				f := &sqlparser.FuncExpr{Name: pa.fn.Name, Star: pa.fn.Star}
				if arg != nil {
					f.Args = []sqlparser.Expr{arg}
				}
				grouped.Items = append(grouped.Items, sqlparser.SelectItem{Expr: f, As: pa.cols[0]})
			}
		}
		scan.Select = grouped
		// One row per group per site.
		if len(keys) == 0 {
			scan.EstRows = 1
		} else if scan.EstRows > 64 {
			scan.EstRows = 64
		}
	}

	// Swap in the partial temp schema and a plain UNION ALL spec.
	ss.Schema = temp
	ss.Spec = &integration.Spec{Kind: integration.UnionAll, Columns: make([]string, len(temp.Columns))}
	for i, c := range temp.Columns {
		ss.Spec.Columns[i] = c.Name
	}
	ss.EstRows = 0
	for _, scan := range ss.Scans {
		ss.EstRows += scan.EstRows
	}

	// Build the residual: merge partials, grouped by the keys.
	residual := &sqlparser.Select{
		From:    []sqlparser.TableRef{{Name: ss.TempTable, Alias: ss.Alias}},
		Limit:   sel.Limit,
		GroupBy: append([]sqlparser.Expr{}, sel.GroupBy...),
	}
	rewrite := func(e sqlparser.Expr) sqlparser.Expr { return rewriteMergedAggs(e, index) }
	for _, it := range sel.Items {
		name := it.As
		if name == "" {
			if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
				name = cr.Column
			} else {
				name = sqlparser.FormatExpr(it.Expr, nil)
			}
		}
		residual.Items = append(residual.Items, sqlparser.SelectItem{Expr: rewrite(it.Expr), As: name})
	}
	if sel.Having != nil {
		residual.Having = rewrite(sel.Having)
	}
	for _, o := range sel.OrderBy {
		residual.OrderBy = append(residual.OrderBy, sqlparser.OrderItem{Expr: rewrite(o.Expr), Desc: o.Desc})
	}
	return residual, true
}

// selectAggregates reports whether the query has aggregate calls or a
// GROUP BY.
func selectAggregates(sel *sqlparser.Select) bool {
	if len(sel.GroupBy) > 0 {
		return true
	}
	for _, it := range sel.Items {
		if it.Expr != nil && sqlparser.HasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// rewriteMergedAggs replaces aggregate subtrees by their merged
// expressions (matched on canonical text), recursing structurally.
func rewriteMergedAggs(e sqlparser.Expr, index map[string]*aggPartial) sqlparser.Expr {
	if e == nil {
		return nil
	}
	if f, ok := e.(*sqlparser.FuncExpr); ok && sqlparser.AggregateFuncs[f.Name] {
		if pa, ok := index[sqlparser.FormatExpr(f, nil)]; ok {
			return pa.merged
		}
		return e
	}
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		return &sqlparser.BinaryExpr{Op: x.Op,
			L: rewriteMergedAggs(x.L, index), R: rewriteMergedAggs(x.R, index)}
	case *sqlparser.UnaryExpr:
		return &sqlparser.UnaryExpr{Op: x.Op, E: rewriteMergedAggs(x.E, index)}
	case *sqlparser.IsNullExpr:
		return &sqlparser.IsNullExpr{E: rewriteMergedAggs(x.E, index), Not: x.Not}
	case *sqlparser.InExpr:
		out := &sqlparser.InExpr{E: rewriteMergedAggs(x.E, index), Not: x.Not}
		for _, it := range x.List {
			out.List = append(out.List, rewriteMergedAggs(it, index))
		}
		return out
	case *sqlparser.BetweenExpr:
		return &sqlparser.BetweenExpr{
			E:   rewriteMergedAggs(x.E, index),
			Not: x.Not,
			Lo:  rewriteMergedAggs(x.Lo, index),
			Hi:  rewriteMergedAggs(x.Hi, index),
		}
	case *sqlparser.FuncExpr:
		out := &sqlparser.FuncExpr{Name: x.Name, Distinct: x.Distinct, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, rewriteMergedAggs(a, index))
		}
		return out
	case *sqlparser.CaseExpr:
		out := &sqlparser.CaseExpr{Else: rewriteMergedAggs(x.Else, index)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sqlparser.WhenClause{
				Cond:   rewriteMergedAggs(w.Cond, index),
				Result: rewriteMergedAggs(w.Result, index),
			})
		}
		return out
	default:
		return e
	}
}

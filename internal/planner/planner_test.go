package planner

import (
	"context"
	"strings"
	"testing"

	"myriad/internal/catalog"
	"myriad/internal/integration"
	"myriad/internal/schema"
	"myriad/internal/sqlparser"
	"myriad/internal/storage"
	"myriad/internal/value"
)

// fixedStats serves canned statistics.
type fixedStats map[string]*storage.TableStats

func (f fixedStats) Stats(_ context.Context, site, export string) (*storage.TableStats, bool) {
	ts, ok := f[strings.ToLower(site+"/"+export)]
	return ts, ok
}

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New("test")
	studentExport := &schema.Schema{
		Table: "STUDENT",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "name", Type: schema.TText},
			{Name: "gpa", Type: schema.TFloat},
		},
		Key: []string{"id"},
	}
	enrollExport := &schema.Schema{
		Table: "ENROLL",
		Columns: []schema.Column{
			{Name: "sid", Type: schema.TInt},
			{Name: "course", Type: schema.TText},
		},
	}
	cat.SetSiteExports("east", []*schema.Schema{studentExport, enrollExport})
	cat.SetSiteExports("west", []*schema.Schema{studentExport})

	defs := []*catalog.IntegratedDef{
		{
			Name: "S",
			Columns: []schema.Column{
				{Name: "id", Type: schema.TInt},
				{Name: "name", Type: schema.TText},
				{Name: "gpa", Type: schema.TFloat},
				{Name: "campus", Type: schema.TText},
			},
			Key:     []string{"id"},
			Combine: integration.UnionAll,
			Sources: []catalog.SourceDef{
				{Site: "east", Export: "STUDENT", ColumnMap: map[string]string{
					"id": "id", "name": "name", "gpa": "gpa", "campus": "'east'"}},
				{Site: "west", Export: "STUDENT", ColumnMap: map[string]string{
					"id": "id", "name": "name", "gpa": "gpa", "campus": "'west'"}},
			},
		},
		{
			Name: "E",
			Columns: []schema.Column{
				{Name: "sid", Type: schema.TInt},
				{Name: "course", Type: schema.TText},
			},
			Combine: integration.UnionAll,
			Sources: []catalog.SourceDef{
				{Site: "east", Export: "ENROLL", ColumnMap: map[string]string{"sid": "sid", "course": "course"}},
			},
		},
		{
			Name: "M",
			Columns: []schema.Column{
				{Name: "id", Type: schema.TInt},
				{Name: "email", Type: schema.TText},
			},
			Key:     []string{"id"},
			Combine: integration.MergeOuter,
			Sources: []catalog.SourceDef{
				{Site: "east", Export: "STUDENT", ColumnMap: map[string]string{"id": "id", "email": "name"}},
				{Site: "west", Export: "STUDENT", ColumnMap: map[string]string{"id": "id", "email": "name"}},
			},
			Resolvers: map[string]string{"email": "first"},
		},
	}
	for _, d := range defs {
		if err := cat.Define(d); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func mustPlan(t *testing.T, p *Planner, sql string, strat Strategy) *Plan {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan(context.Background(), stmt.(*sqlparser.Select), strat)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return plan
}

func scanSQL(plan *Plan) string {
	var parts []string
	for _, ss := range plan.ScanSets {
		for _, sc := range ss.Scans {
			parts = append(parts, sc.Site+": "+sc.SQL())
		}
	}
	return strings.Join(parts, "\n")
}

func TestSimpleStrategyNoPushdown(t *testing.T) {
	p := New(testCatalog(t), nil)
	plan := mustPlan(t, p, `SELECT name FROM S WHERE gpa > 3.5`, Simple)
	sql := scanSQL(plan)
	if strings.Contains(sql, "WHERE") {
		t.Errorf("simple strategy pushed a predicate:\n%s", sql)
	}
	// Residual keeps the filter.
	if !strings.Contains(sqlparser.FormatStatement(plan.Residual, nil), "gpa > 3.5") {
		t.Error("residual lost the predicate")
	}
}

func TestCostBasedPushdown(t *testing.T) {
	p := New(testCatalog(t), nil)
	plan := mustPlan(t, p, `SELECT name FROM S WHERE gpa > 3.5`, CostBased)
	sql := scanSQL(plan)
	if !strings.Contains(sql, "gpa > 3.5") {
		t.Errorf("predicate not pushed:\n%s", sql)
	}
	// Both sources got it (union-all combine).
	if strings.Count(sql, "gpa > 3.5") != 2 {
		t.Errorf("predicate should reach both sources:\n%s", sql)
	}
}

func TestProjectionPruning(t *testing.T) {
	p := New(testCatalog(t), nil)
	plan := mustPlan(t, p, `SELECT name FROM S`, CostBased)
	ss := plan.ScanSets[0]
	// Needed columns: name + key (id).
	if len(ss.Schema.Columns) != 2 {
		t.Errorf("temp schema columns: %v", ss.Schema.Columns)
	}
	if strings.Contains(scanSQL(plan), "gpa") {
		t.Errorf("pruned column still scanned:\n%s", scanSQL(plan))
	}

	// Star keeps everything.
	plan = mustPlan(t, p, `SELECT * FROM S`, CostBased)
	if got := len(plan.ScanSets[0].Schema.Columns); got != 4 {
		t.Errorf("star kept %d columns", got)
	}
}

func TestMergeOuterPushdownOnlyKeys(t *testing.T) {
	p := New(testCatalog(t), nil)
	// Key predicate pushes.
	plan := mustPlan(t, p, `SELECT email FROM M WHERE id = 7`, CostBased)
	if strings.Count(scanSQL(plan), "id = 7") != 2 {
		t.Errorf("key predicate should push to both merge sources:\n%s", scanSQL(plan))
	}
	// Non-key predicate must NOT push (value resolved post-merge).
	plan = mustPlan(t, p, `SELECT id FROM M WHERE email = 'x'`, CostBased)
	if strings.Contains(scanSQL(plan), "WHERE") {
		t.Errorf("non-key predicate pushed through merge:\n%s", scanSQL(plan))
	}
}

func TestDerivedColumnPredicateTranslation(t *testing.T) {
	p := New(testCatalog(t), nil)
	// campus maps to a literal per source: pushing campus = 'east'
	// yields 'east' = 'east' at east and 'west' = 'east' at west.
	plan := mustPlan(t, p, `SELECT name FROM S WHERE campus = 'east'`, CostBased)
	sql := scanSQL(plan)
	if !strings.Contains(sql, "'east' = 'east'") || !strings.Contains(sql, "'west' = 'east'") {
		t.Errorf("derived-column predicate translation:\n%s", sql)
	}
}

func TestLimitPushdown(t *testing.T) {
	p := New(testCatalog(t), nil)
	plan := mustPlan(t, p, `SELECT name FROM S LIMIT 5`, CostBased)
	if !strings.Contains(scanSQL(plan), "LIMIT 5") {
		t.Errorf("limit not pushed:\n%s", scanSQL(plan))
	}
	// With ORDER BY the pushdown becomes top-K: each source sorts and
	// limits, and the residual re-sorts the merged candidates.
	plan = mustPlan(t, p, `SELECT name FROM S ORDER BY name LIMIT 5`, CostBased)
	sql := scanSQL(plan)
	if !strings.Contains(sql, "ORDER BY name LIMIT 5") {
		t.Errorf("top-K not pushed:\n%s", sql)
	}
	res := sqlparser.FormatStatement(plan.Residual, nil)
	if !strings.Contains(res, "ORDER BY") || !strings.Contains(res, "LIMIT 5") {
		t.Errorf("residual lost the global sort/limit: %s", res)
	}
	// OFFSET widens the per-source fetch but stays in the residual.
	plan = mustPlan(t, p, `SELECT name FROM S ORDER BY name LIMIT 5 OFFSET 3`, CostBased)
	if !strings.Contains(scanSQL(plan), "LIMIT 8") {
		t.Errorf("offset not added to per-source K:\n%s", scanSQL(plan))
	}
	// Untranslatable order keys (unmapped at a source) disable it.
	plan = mustPlan(t, p, `SELECT sid FROM E ORDER BY course LIMIT 2`, CostBased)
	if !strings.Contains(scanSQL(plan), "LIMIT 2") {
		// E has a single source mapping both columns, so it pushes;
		// use M (merge) for the negative case below.
		t.Errorf("single-source top-K should push:\n%s", scanSQL(plan))
	}
	plan = mustPlan(t, p, `SELECT id FROM M ORDER BY id LIMIT 2`, CostBased)
	if strings.Contains(scanSQL(plan), "LIMIT") {
		t.Errorf("top-K pushed through merge combine:\n%s", scanSQL(plan))
	}
	// Not pushed when the filter could not be fully pushed.
	plan = mustPlan(t, p, `SELECT id FROM M WHERE email = 'x' LIMIT 5`, CostBased)
	if strings.Contains(scanSQL(plan), "LIMIT") {
		t.Errorf("limit pushed without full filter pushdown:\n%s", scanSQL(plan))
	}
}

func TestLimitNotPushedWhenPredicateUnpushable(t *testing.T) {
	// Regression: a relation whose source maps only some columns. A
	// WHERE on an unmapped column cannot push, so neither may LIMIT
	// (the per-source cut would run before the residual filter).
	cat := testCatalog(t)
	if err := cat.Define(&catalog.IntegratedDef{
		Name: "P",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "name", Type: schema.TText},
			{Name: "gpa", Type: schema.TFloat},
		},
		Combine: integration.UnionAll,
		Sources: []catalog.SourceDef{
			{Site: "east", Export: "STUDENT", ColumnMap: map[string]string{
				"id": "id", "name": "name", "gpa": "gpa"}},
			// west maps no gpa: predicates on gpa cannot push there.
			{Site: "west", Export: "STUDENT", ColumnMap: map[string]string{
				"id": "id", "name": "name"}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	p := New(cat, nil)
	plan := mustPlan(t, p, `SELECT name FROM P WHERE gpa > 3 LIMIT 2`, CostBased)
	if strings.Contains(scanSQL(plan), "LIMIT") {
		t.Errorf("limit pushed below an unpushable predicate:\n%s", scanSQL(plan))
	}
	// And the residual still filters.
	if !strings.Contains(sqlparser.FormatStatement(plan.Residual, nil), "gpa > 3") {
		t.Error("residual lost the filter")
	}
}

func TestSingleSiteLimitOffsetPushdown(t *testing.T) {
	// E has one source, so the site applies the full LIMIT/OFFSET and
	// ships only Count rows; the residual keeps the count but must not
	// re-apply the consumed offset.
	p := New(testCatalog(t), nil)
	plan := mustPlan(t, p, `SELECT sid FROM E ORDER BY sid LIMIT 5 OFFSET 20`, CostBased)
	sql := scanSQL(plan)
	if !strings.Contains(sql, "ORDER BY sid LIMIT 5 OFFSET 20") {
		t.Errorf("single-site scan missing full limit/offset:\n%s", sql)
	}
	res := sqlparser.FormatStatement(plan.Residual, nil)
	if !strings.Contains(res, "LIMIT 5") || strings.Contains(res, "OFFSET") {
		t.Errorf("residual should keep LIMIT 5 without OFFSET: %s", res)
	}
	if plan.ScanSets[0].Scans[0].EstRows > 5 {
		t.Errorf("scan estimate not clamped to count: %v", plan.ScanSets[0].Scans[0].EstRows)
	}

	// Multi-source sets keep the widened per-source fetch and the full
	// residual limit (offset applies only after the global merge).
	plan = mustPlan(t, p, `SELECT name FROM S ORDER BY name LIMIT 5 OFFSET 3`, CostBased)
	if !strings.Contains(scanSQL(plan), "LIMIT 8") {
		t.Errorf("multi-source K should stay count+offset:\n%s", scanSQL(plan))
	}
	res = sqlparser.FormatStatement(plan.Residual, nil)
	if !strings.Contains(res, "LIMIT 5 OFFSET 3") {
		t.Errorf("multi-source residual lost the full limit: %s", res)
	}

	// The final branch of a UNION carries the union-wide LIMIT/OFFSET:
	// the exact pushdown must not consume the offset against that one
	// fragment. The widened over-fetch (count+offset) is still fine.
	plan = mustPlan(t, p, `SELECT sid FROM E UNION ALL SELECT sid FROM E ORDER BY sid LIMIT 5 OFFSET 20`, CostBased)
	sql = scanSQL(plan)
	if strings.Contains(sql, "OFFSET") {
		t.Errorf("union branch consumed the combined offset at a site:\n%s", sql)
	}
	if !strings.Contains(sql, "LIMIT 25") {
		t.Errorf("union-all branch lost the safe over-fetch:\n%s", sql)
	}
	res = sqlparser.FormatStatement(plan.Residual, nil)
	if !strings.Contains(res, "LIMIT 5 OFFSET 20") {
		t.Errorf("union residual lost the combined limit/offset: %s", res)
	}

	// A deduplicating UNION anywhere in the chain disables pushdown on
	// its branches entirely: the residual dedupes the merged rows
	// before the union-wide LIMIT, so rows cut by a per-source
	// over-fetch could have survived dedup.
	plan = mustPlan(t, p, `SELECT sid FROM E UNION SELECT sid FROM E ORDER BY sid LIMIT 5`, CostBased)
	if strings.Contains(scanSQL(plan), "LIMIT") {
		t.Errorf("limit pushed into a branch of UNION DISTINCT:\n%s", scanSQL(plan))
	}
	plan = mustPlan(t, p, `SELECT sid FROM E UNION SELECT sid FROM E UNION ALL SELECT sid FROM E ORDER BY sid LIMIT 5`, CostBased)
	if strings.Contains(scanSQL(plan), "LIMIT") {
		t.Errorf("limit pushed below a mixed-distinct union chain:\n%s", scanSQL(plan))
	}

	// count+offset overflowing must not wrap the over-fetch arithmetic
	// (a negative Count renders as no LIMIT and corrupts EstRows); the
	// pushdown just stays home.
	plan = mustPlan(t, p, `SELECT name FROM S ORDER BY name LIMIT 9223372036854775807 OFFSET 1`, CostBased)
	if strings.Contains(scanSQL(plan), "LIMIT") {
		t.Errorf("overflowing limit pushed to sites:\n%s", scanSQL(plan))
	}
	for _, ss := range plan.ScanSets {
		for _, sc := range ss.Scans {
			if sc.EstRows < 0 {
				t.Errorf("EstRows corrupted by overflow: %v", sc.EstRows)
			}
		}
	}
}

func statsFor() fixedStats {
	mk := func(rows int64, distinct int64) *storage.TableStats {
		return &storage.TableStats{
			Rows: rows,
			Columns: []storage.ColumnStats{
				{Name: "id", Distinct: distinct, Min: value.NewInt(0), Max: value.NewInt(rows)},
				{Name: "sid", Distinct: distinct, Min: value.NewInt(0), Max: value.NewInt(rows)},
				{Name: "gpa", Distinct: 40, Min: value.NewFloat(0), Max: value.NewFloat(4)},
				{Name: "name", Distinct: distinct},
				{Name: "course", Distinct: 10},
			},
		}
	}
	return fixedStats{
		"east/student": mk(50, 50),
		"west/student": mk(60, 60),
		"east/enroll":  mk(100000, 5000),
	}
}

func TestSemijoinChosenWhenProfitable(t *testing.T) {
	p := New(testCatalog(t), statsFor())
	plan := mustPlan(t, p,
		`SELECT s.name, e.course FROM S s JOIN E e ON s.id = e.sid WHERE s.gpa > 3.9`, CostBased)

	var probe *ScanSet
	for _, ss := range plan.ScanSets {
		if ss.SemiFrom != "" {
			probe = ss
		}
	}
	if probe == nil {
		t.Fatalf("no semijoin chosen:\n%s", plan.Describe())
	}
	if !strings.EqualFold(probe.Alias, "e") || !strings.EqualFold(probe.SemiFrom, "s") {
		t.Errorf("semijoin direction: probe=%s build=%s", probe.Alias, probe.SemiFrom)
	}
	for _, sc := range probe.Scans {
		if sc.SemiProbe == nil {
			t.Error("probe scan missing SemiProbe expression")
		}
	}
	if !probe.SemiBind {
		t.Error("profitable semijoin not authorized for batched binding")
	}
	if out := plan.Describe(); !strings.Contains(out, "bind-join probe") {
		t.Errorf("Describe missing bind-join marker:\n%s", out)
	}
}

func TestSourceSelectionPrunesDisjointFragment(t *testing.T) {
	cat := testCatalog(t)
	// west's STUDENT fragment holds only ids 1000-1999: a conjunct
	// id < 100 can never match there.
	cat.SetFragmentStats("west", "STUDENT", &storage.TableStats{
		Rows: 1000,
		Columns: []storage.ColumnStats{
			{Name: "id", Distinct: 1000, Min: value.NewInt(1000), Max: value.NewInt(1999)},
		},
	})
	p := New(cat, statsFor())
	plan := mustPlan(t, p, `SELECT name FROM S WHERE id < 100`, CostBased)
	var pruned, live int
	for _, sc := range plan.ScanSets[0].Scans {
		if sc.Pruned != "" {
			pruned++
			if sc.Site != "west" {
				t.Errorf("pruned wrong site %s (%s)", sc.Site, sc.Pruned)
			}
		} else {
			live++
		}
	}
	if pruned != 1 || live != 1 {
		t.Fatalf("pruned=%d live=%d:\n%s", pruned, live, plan.Describe())
	}
	if out := plan.Describe(); !strings.Contains(out, "pruned") {
		t.Errorf("Describe missing pruned marker:\n%s", out)
	}
}

func TestSourceSelectionPrunesEmptyFragment(t *testing.T) {
	cat := testCatalog(t)
	cat.SetFragmentStats("west", "STUDENT", &storage.TableStats{Rows: 0})
	p := New(cat, statsFor())
	plan := mustPlan(t, p, `SELECT name FROM S WHERE gpa > 3`, CostBased)
	found := false
	for _, sc := range plan.ScanSets[0].Scans {
		if sc.Site == "west" {
			found = true
			if sc.Pruned == "" {
				t.Errorf("empty fragment not pruned:\n%s", plan.Describe())
			}
		} else if sc.Pruned != "" {
			t.Errorf("non-empty fragment pruned: %s (%s)", sc.Site, sc.Pruned)
		}
	}
	if !found {
		t.Fatal("west scan missing from plan")
	}
}

func TestSourceSelectionKeepsAggregatePushdownSound(t *testing.T) {
	// A pruned source under partial aggregation would drop its
	// zero-count partial row; pruning must stand down when aggregates
	// were pushed.
	cat := testCatalog(t)
	cat.SetFragmentStats("west", "STUDENT", &storage.TableStats{Rows: 0})
	p := New(cat, statsFor())
	plan := mustPlan(t, p, `SELECT COUNT(*) FROM S`, CostBased)
	for _, ss := range plan.ScanSets {
		for _, sc := range ss.Scans {
			if sc.Pruned != "" {
				t.Errorf("pruned a source under aggregate pushdown: %s (%s)", sc.Site, sc.Pruned)
			}
		}
	}
}

func TestSemijoinNotChosenWhenBuildTooBig(t *testing.T) {
	stats := statsFor()
	// Scale the key column's distinct count with the row count: the
	// cost model prices the shipped key set, and a huge build with 50
	// distinct keys would (correctly) still bind-join.
	stats["east/student"].Rows = 50000
	stats["east/student"].Columns[0].Distinct = 50000
	stats["west/student"].Rows = 50000
	stats["west/student"].Columns[0].Distinct = 50000
	p := New(testCatalog(t), stats)
	plan := mustPlan(t, p, `SELECT s.name, e.course FROM S s JOIN E e ON s.id = e.sid`, CostBased)
	for _, ss := range plan.ScanSets {
		if ss.SemiFrom != "" {
			t.Fatalf("semijoin chosen with huge build side:\n%s", plan.Describe())
		}
	}
}

func TestJoinReorderBySize(t *testing.T) {
	p := New(testCatalog(t), statsFor())
	plan := mustPlan(t, p, `SELECT s.name FROM E e JOIN S s ON e.sid = s.id`, CostBased)
	res := plan.Residual
	if len(res.From) != 2 || len(res.Joins) != 0 {
		t.Fatalf("reorder should flatten joins: %s", sqlparser.FormatStatement(res, nil))
	}
	// S (small) must come before E (large).
	if !strings.EqualFold(res.From[0].Alias, "s") {
		t.Errorf("small relation not first: %s", sqlparser.FormatStatement(res, nil))
	}
}

func TestLeftJoinNotReordered(t *testing.T) {
	p := New(testCatalog(t), statsFor())
	plan := mustPlan(t, p, `SELECT s.name FROM E e LEFT JOIN S s ON e.sid = s.id`, CostBased)
	res := plan.Residual
	if len(res.Joins) != 1 || res.Joins[0].Kind != sqlparser.JoinLeft {
		t.Errorf("left join mangled: %s", sqlparser.FormatStatement(res, nil))
	}
}

func TestPlanErrors(t *testing.T) {
	p := New(testCatalog(t), nil)
	for _, sql := range []string{
		`SELECT x FROM GHOST`,
		`SELECT ghost FROM S`,
		`SELECT S.ghost FROM S`,
		`SELECT id FROM S a, S a`, // duplicate alias
		`SELECT id FROM S, M`,     // ambiguous id
	} {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Plan(context.Background(), stmt.(*sqlparser.Select), CostBased); err == nil {
			t.Errorf("plan %q accepted", sql)
		}
	}
}

func TestCountStarUsesMinimalColumns(t *testing.T) {
	p := New(testCatalog(t), nil)
	plan := mustPlan(t, p, `SELECT COUNT(*) FROM S`, CostBased)
	// Only the key column needs to travel.
	if got := len(plan.ScanSets[0].Schema.Columns); got != 1 {
		t.Errorf("COUNT(*) ships %d columns", got)
	}
}

func TestSelectivityEstimates(t *testing.T) {
	ts := &storage.TableStats{
		Rows: 1000,
		Columns: []storage.ColumnStats{
			{Name: "a", Distinct: 100, Nulls: 100, Min: value.NewInt(0), Max: value.NewInt(1000)},
		},
	}
	cases := []struct {
		expr string
		lo   float64
		hi   float64
	}{
		{"a = 5", 0.009, 0.011},
		{"a < 250", 0.24, 0.26},
		{"a >= 750", 0.24, 0.26},
		{"a = 5 AND a < 250", 0.001, 0.004},
		{"a = 5 OR a = 6", 0.015, 0.025},
		{"a IS NULL", 0.09, 0.11},
		{"a IS NOT NULL", 0.89, 0.91},
		{"a IN (1, 2, 3)", 0.025, 0.035},
		{"NOT a = 5", 0.98, 1.0},
		{"a <> 5", 0.85, 0.95},
	}
	for _, c := range cases {
		e, err := sqlparser.ParseExpr(c.expr)
		if err != nil {
			t.Fatal(err)
		}
		got := estimateSelectivity(e, ts)
		if got < c.lo || got > c.hi {
			t.Errorf("selectivity(%q) = %g, want [%g, %g]", c.expr, got, c.lo, c.hi)
		}
	}
}

func TestPlanDescribe(t *testing.T) {
	p := New(testCatalog(t), statsFor())
	plan := mustPlan(t, p, `SELECT name FROM S WHERE gpa > 3`, CostBased)
	out := plan.Describe()
	for _, want := range []string{"strategy: cost-based", "@east", "@west", "residual:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}

func TestUnionPlan(t *testing.T) {
	p := New(testCatalog(t), nil)
	plan := mustPlan(t, p, `SELECT name FROM S WHERE gpa > 3 UNION SELECT course FROM E`, CostBased)
	if len(plan.ScanSets) != 2 {
		t.Fatalf("union scan sets: %d", len(plan.ScanSets))
	}
	res := sqlparser.FormatStatement(plan.Residual, nil)
	if !strings.Contains(res, "UNION") {
		t.Errorf("residual lost the union: %s", res)
	}
	// Temp tables of different branches must not collide.
	if plan.ScanSets[0].TempTable == plan.ScanSets[1].TempTable {
		t.Error("temp table name collision across branches")
	}
}

func contextBG() context.Context { return context.Background() }

// Package planner turns a global SQL query over integrated relations
// into an executable plan: per-site remote subqueries (shipped through
// gateways), integration combine steps, and a residual query evaluated
// at the federation.
//
// Two strategies are provided, mirroring the paper's status in 1994:
//
//   - Simple: the implemented strategy — fetch every referenced export
//     relation essentially whole (all mapped columns, no predicate
//     pushdown) and evaluate the entire query at the federation.
//   - CostBased: the "full-fledged query optimization ... currently
//     being developed" — projection pruning, selection pushdown through
//     the integration mappings, statistics-driven join ordering, LIMIT
//     pushdown, and semijoin reduction for cross-site joins.
package planner

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"myriad/internal/catalog"
	"myriad/internal/integration"
	"myriad/internal/schema"
	"myriad/internal/sqlparser"
	"myriad/internal/storage"
	"myriad/internal/value"
)

// Strategy selects the optimizer.
type Strategy uint8

// Optimizer strategies.
const (
	Simple Strategy = iota
	CostBased
)

// String names the strategy.
func (s Strategy) String() string {
	if s == CostBased {
		return "cost-based"
	}
	return "simple"
}

// StatsProvider supplies per-export statistics; implementations may
// cache. ok=false degrades estimates to defaults.
type StatsProvider interface {
	Stats(ctx context.Context, site, export string) (*storage.TableStats, bool)
}

// NoStats is a StatsProvider with no information.
type NoStats struct{}

// Stats always reports no statistics.
func (NoStats) Stats(context.Context, string, string) (*storage.TableStats, bool) {
	return nil, false
}

// RemoteScan is one subquery shipped to one site's gateway.
type RemoteScan struct {
	Site   string
	Select *sqlparser.Select // canonical SQL over the site's export relations
	// SemiProbe, when the owning ScanSet participates as a semijoin
	// probe, is the translated probe expression (in export terms) to
	// which the executor attaches the IN-list.
	SemiProbe sqlparser.Expr
	EstRows   float64
	// Pruned, when non-empty, records why source selection dropped this
	// scan: the catalog/cached statistics prove the fragment cannot
	// contribute rows (empty fragment, or a pushed conjunct disjoint
	// with the column's [min, max]). The executor substitutes an empty
	// fragment instead of contacting the site.
	Pruned string
}

// SQL renders the scan's canonical SQL.
func (r *RemoteScan) SQL() string { return sqlparser.FormatStatement(r.Select, nil) }

// ScanSet materializes one integrated-relation reference of the query.
type ScanSet struct {
	Alias     string // effective name in the query
	TempTable string // table the executor loads at the federation
	Schema    *schema.Schema
	Def       *catalog.IntegratedDef
	Scans     []*RemoteScan
	Spec      *integration.Spec

	// Semijoin reduction: when SemiFrom is non-empty the executor must
	// materialize that scan set first, collect the distinct values of
	// SemiBuildCol, and attach them as an IN-list to each scan's
	// SemiProbe expression (skipped when the list exceeds MaxInList).
	SemiFrom     string
	SemiBuildCol string

	// SemiBind authorizes the batched bind join: the executor may split
	// the collected keys into MaxInList-sized batches and ship the probe
	// subqueries once per batch (the batches partition the keys, so
	// per-batch combining is exact). Without it a key set larger than
	// MaxInList falls back to shipping the fragments whole.
	SemiBind bool
	// EstKeys/EstBatches are the planner's distinct-key and batch-count
	// estimates for the bind join (EXPLAIN only).
	EstKeys    float64
	EstBatches int

	// ScanOrdering, when non-nil, declares that every source scan
	// streams its fragment already sorted on these keys (indexes into
	// Schema.Columns) — set when the LIMIT/ORDER BY pushdown ships the
	// same translated ORDER BY to every source. The executor may then
	// k-way merge the sources into a globally sorted stream instead of
	// re-sorting at the federation.
	ScanOrdering []schema.SortKey

	EstRows float64
}

// Plan is an executable global query plan.
type Plan struct {
	Strategy Strategy
	ScanSets []*ScanSet
	// Residual is the query remaining after remote scans, phrased over
	// the temp tables (aliases preserved).
	Residual *sqlparser.Select
	// MaxInList bounds one shipped IN-list — the bind join's batch size
	// (0 = default 1000).
	MaxInList int
	// BindMaxKeys bounds the total distinct keys a bind join may collect
	// before falling back to shipping fragments whole (0 = default
	// 100000).
	BindMaxKeys int
}

// Describe renders a human-readable plan (myriadctl EXPLAIN).
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s\n", p.Strategy)
	for _, ss := range p.ScanSets {
		fmt.Fprintf(&b, "scan-set %s (%s, est %.0f rows)", ss.Alias, ss.Def.Name, ss.EstRows)
		switch {
		case ss.SemiFrom != "" && ss.SemiBind:
			fmt.Fprintf(&b, " [bind-join probe of %s on %s, ~%.0f keys in ~%d batches]",
				ss.SemiFrom, ss.SemiBuildCol, ss.EstKeys, ss.EstBatches)
		case ss.SemiFrom != "":
			fmt.Fprintf(&b, " [semijoin probe of %s on %s]", ss.SemiFrom, ss.SemiBuildCol)
		}
		b.WriteByte('\n')
		for _, sc := range ss.Scans {
			if sc.Pruned != "" {
				fmt.Fprintf(&b, "  @%s: pruned (%s)\n", sc.Site, sc.Pruned)
				continue
			}
			fmt.Fprintf(&b, "  @%s: %s (est %.0f)\n", sc.Site, sc.SQL(), sc.EstRows)
		}
	}
	fmt.Fprintf(&b, "residual: %s\n", sqlparser.FormatStatement(p.Residual, nil))
	return b.String()
}

// Planner builds plans against one federation catalog.
type Planner struct {
	Catalog *catalog.Catalog
	Stats   StatsProvider
	// BindMaxKeys is the largest estimated distinct-key set a bind join
	// may ship; beyond it the join falls back to whole fragments
	// (default 100000 keys).
	BindMaxKeys float64
	// SemiMinRatio is the minimum probe/shipped-keys size ratio to
	// bother with a semijoin at all (default 4).
	SemiMinRatio float64
}

// New returns a planner over cat using stats (NoStats{} if nil).
func New(cat *catalog.Catalog, stats StatsProvider) *Planner {
	if stats == nil {
		stats = NoStats{}
	}
	return &Planner{Catalog: cat, Stats: stats, BindMaxKeys: 100000, SemiMinRatio: 4}
}

// Plan compiles a parsed global SELECT.
func (p *Planner) Plan(ctx context.Context, sel *sqlparser.Select, strategy Strategy) (*Plan, error) {
	plan := &Plan{Strategy: strategy, MaxInList: 1000, BindMaxKeys: int(p.BindMaxKeys)}
	residual, err := p.planSelect(ctx, sel, strategy, plan, 0, false)
	if err != nil {
		return nil, err
	}
	plan.Residual = residual
	return plan, nil
}

// planSelect plans one branch (and its UNION continuations).
// unionDistinct reports whether any set operation earlier in the chain
// was a deduplicating UNION, in which case the combined result is
// deduped before the union-wide LIMIT applies.
func (p *Planner) planSelect(ctx context.Context, sel *sqlparser.Select, strategy Strategy, plan *Plan, branch int, unionDistinct bool) (*sqlparser.Select, error) {
	out := *sel
	// Copy the slices the planner rewrites so the caller's AST survives.
	out.From = append([]sqlparser.TableRef{}, sel.From...)
	out.Joins = append([]sqlparser.Join{}, sel.Joins...)

	// Resolve the FROM references to integrated relations.
	type refInfo struct {
		ref  sqlparser.TableRef
		def  *catalog.IntegratedDef
		join *sqlparser.Join // nil for FROM entries
	}
	var refs []refInfo
	for _, r := range sel.From {
		def, ok := p.Catalog.Integrated(r.Name)
		if !ok {
			return nil, fmt.Errorf("planner: no integrated relation %q in federation %s", r.Name, p.Catalog.Federation())
		}
		refs = append(refs, refInfo{ref: r, def: def})
	}
	for i := range sel.Joins {
		j := &sel.Joins[i]
		def, ok := p.Catalog.Integrated(j.Table.Name)
		if !ok {
			return nil, fmt.Errorf("planner: no integrated relation %q in federation %s", j.Table.Name, p.Catalog.Federation())
		}
		refs = append(refs, refInfo{ref: j.Table, def: def, join: j})
	}
	if len(refs) == 0 {
		// Table-free SELECT: residual evaluates it directly.
		return &out, nil
	}

	aliasDef := make(map[string]*catalog.IntegratedDef, len(refs))
	for _, ri := range refs {
		alias := strings.ToLower(ri.ref.EffectiveName())
		if _, dup := aliasDef[alias]; dup {
			return nil, fmt.Errorf("planner: duplicate relation alias %q", ri.ref.EffectiveName())
		}
		aliasDef[alias] = ri.def
	}

	needed, err := neededColumns(sel, refs[0].def, aliasDef)
	if err != nil {
		return nil, err
	}

	// Build a scan set per reference.
	sets := make(map[string]*ScanSet, len(refs))
	for i, ri := range refs {
		alias := ri.ref.EffectiveName()
		cols := needed[strings.ToLower(alias)]
		ss, err := p.buildScanSet(ctx, ri.def, alias, cols, fmt.Sprintf("t%d_%d_%s", branch, i, strings.ToLower(alias)))
		if err != nil {
			return nil, err
		}
		plan.ScanSets = append(plan.ScanSets, ss)
		sets[strings.ToLower(alias)] = ss
	}

	if strategy == CostBased {
		p.pushSelections(sel, sets)
		// Partial aggregation subsumes the remaining rewrites when it
		// applies: the residual it returns already reads the temp
		// table of per-site partial aggregates.
		if residual, ok := p.pushAggregates(sel, sets); ok {
			return residual, nil
		}
		// Source selection runs only on non-aggregate-pushed plans: a
		// pruned source under partial aggregation would drop its
		// zero-count partial row, which is not the same as contributing
		// nothing (SUM over no partials is NULL, not 0).
		p.pruneSources(ctx, sets)
		if nl := p.pushLimit(sel, sets, branch > 0, unionDistinct); nl != nil {
			out.Limit = nl
		}
		p.chooseSemijoin(ctx, sel, sets, plan)
		reorderJoins(&out, sets)
	}

	// Rewrite FROM/JOIN to the temp tables.
	for i := range out.From {
		ss := sets[strings.ToLower(out.From[i].EffectiveName())]
		out.From[i] = sqlparser.TableRef{Name: ss.TempTable, Alias: ss.Alias}
	}
	for i := range out.Joins {
		ss := sets[strings.ToLower(out.Joins[i].Table.EffectiveName())]
		out.Joins[i].Table = sqlparser.TableRef{Name: ss.TempTable, Alias: ss.Alias}
	}

	if sel.Compound != nil {
		right, err := p.planSelect(ctx, sel.Compound.Right, strategy, plan, branch+1, unionDistinct || !sel.Compound.All)
		if err != nil {
			return nil, err
		}
		out.Compound = &sqlparser.CompoundSelect{All: sel.Compound.All, Right: right}
	}
	return &out, nil
}

// neededColumns computes, per alias, which integrated columns the query
// references (plus merge keys). A star pulls in every column.
func neededColumns(sel *sqlparser.Select, _ *catalog.IntegratedDef, aliasDef map[string]*catalog.IntegratedDef) (map[string][]string, error) {
	need := make(map[string]map[string]bool, len(aliasDef))
	for a := range aliasDef {
		need[a] = make(map[string]bool)
	}
	addAll := func(alias string) {
		for _, c := range aliasDef[alias].Columns {
			need[alias][strings.ToLower(c.Name)] = true
		}
	}
	addCol := func(table, col string) error {
		if table != "" {
			a := strings.ToLower(table)
			def, ok := aliasDef[a]
			if !ok {
				return fmt.Errorf("planner: unknown relation %q", table)
			}
			if def.ColIndex(col) < 0 {
				return fmt.Errorf("planner: relation %s has no column %q", table, col)
			}
			need[a][strings.ToLower(col)] = true
			return nil
		}
		owner := ""
		for a, def := range aliasDef {
			if def.ColIndex(col) >= 0 {
				if owner != "" {
					return fmt.Errorf("planner: ambiguous column %q", col)
				}
				owner = a
			}
		}
		if owner == "" {
			return fmt.Errorf("planner: unknown column %q", col)
		}
		need[owner][strings.ToLower(col)] = true
		return nil
	}
	var addExpr func(e sqlparser.Expr) error
	addExpr = func(e sqlparser.Expr) error {
		var werr error
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if cr, ok := x.(*sqlparser.ColumnRef); ok {
				if err := addCol(cr.Table, cr.Column); err != nil && werr == nil {
					werr = err
				}
			}
			return true
		})
		return werr
	}
	// ORDER BY may reference select-item aliases or, in UNION queries,
	// the union's output columns; those resolve only in the residual, so
	// unknown columns are skipped rather than rejected here.
	addExprLenient := func(e sqlparser.Expr) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if cr, ok := x.(*sqlparser.ColumnRef); ok {
				addCol(cr.Table, cr.Column) //nolint:errcheck
			}
			return true
		})
	}

	for _, it := range sel.Items {
		switch {
		case it.Star && it.Table == "":
			for a := range aliasDef {
				addAll(a)
			}
		case it.Star:
			a := strings.ToLower(it.Table)
			if _, ok := aliasDef[a]; !ok {
				return nil, fmt.Errorf("planner: unknown relation %q in star", it.Table)
			}
			addAll(a)
		default:
			if err := addExpr(it.Expr); err != nil {
				return nil, err
			}
		}
	}
	if err := addExpr(sel.Where); err != nil {
		return nil, err
	}
	for _, j := range sel.Joins {
		if err := addExpr(j.On); err != nil {
			return nil, err
		}
	}
	for _, g := range sel.GroupBy {
		if err := addExpr(g); err != nil {
			return nil, err
		}
	}
	if err := addExpr(sel.Having); err != nil {
		return nil, err
	}
	for _, o := range sel.OrderBy {
		addExprLenient(o.Expr)
	}

	out := make(map[string][]string, len(need))
	for a, cols := range need {
		def := aliasDef[a]
		// Merge keys are always needed for correct integration.
		for _, k := range def.Key {
			cols[strings.ToLower(k)] = true
		}
		// Keep integrated-definition order for determinism.
		var ordered []string
		for _, c := range def.Columns {
			if cols[strings.ToLower(c.Name)] {
				ordered = append(ordered, c.Name)
			}
		}
		if len(ordered) == 0 && len(def.Columns) > 0 {
			// e.g. SELECT COUNT(*): any column will do; prefer the key.
			if len(def.Key) > 0 {
				ordered = append(ordered, def.Key...)
			} else {
				ordered = append(ordered, def.Columns[0].Name)
			}
		}
		out[a] = ordered
	}
	return out, nil
}

// buildScanSet constructs the per-source scans for one integrated
// relation reference projected to cols.
func (p *Planner) buildScanSet(ctx context.Context, def *catalog.IntegratedDef, alias string, cols []string, temp string) (*ScanSet, error) {
	sc := &schema.Schema{Table: temp}
	for _, c := range cols {
		ci := def.ColIndex(c)
		sc.Columns = append(sc.Columns, schema.Column{Name: def.Columns[ci].Name, Type: def.Columns[ci].Type})
	}
	spec := &integration.Spec{Kind: def.Combine, Columns: make([]string, len(sc.Columns))}
	for i, c := range sc.Columns {
		spec.Columns[i] = c.Name
	}
	for _, k := range def.Key {
		for i, c := range sc.Columns {
			if strings.EqualFold(c.Name, k) {
				spec.KeyCols = append(spec.KeyCols, i)
			}
		}
	}
	if len(def.Resolvers) > 0 {
		spec.Resolvers = make(map[int]integration.Func)
		for col, fname := range def.Resolvers {
			fn, ok := integration.Lookup(fname)
			if !ok {
				return nil, fmt.Errorf("planner: unknown integration function %q", fname)
			}
			for i, c := range sc.Columns {
				if strings.EqualFold(c.Name, col) {
					spec.Resolvers[i] = fn
				}
			}
		}
	}

	ss := &ScanSet{Alias: alias, TempTable: temp, Schema: sc, Def: def, Spec: spec}
	for _, src := range def.Sources {
		scan, est, err := p.buildScan(ctx, &src, sc)
		if err != nil {
			return nil, err
		}
		scan.EstRows = est
		ss.Scans = append(ss.Scans, scan)
		ss.EstRows += est
	}
	if def.Combine != integration.UnionAll && ss.EstRows > 1 {
		// Dedup/merge reduces cardinality; assume mild overlap.
		ss.EstRows *= 0.75
	}
	return ss, nil
}

// buildScan produces the canonical per-source subquery: each temp column
// is either the mapped expression (aliased to the integrated name) or a
// NULL literal, so all sources align positionally.
func (p *Planner) buildScan(ctx context.Context, src *catalog.SourceDef, tempSchema *schema.Schema) (*RemoteScan, float64, error) {
	sel := &sqlparser.Select{From: []sqlparser.TableRef{{Name: src.Export}}}
	for _, c := range tempSchema.Columns {
		mapped, ok := src.MapFold(c.Name)
		var e sqlparser.Expr
		if !ok {
			e = &sqlparser.Literal{Val: value.Null()}
		} else {
			var err error
			if e, err = sqlparser.ParseExpr(mapped); err != nil {
				return nil, 0, fmt.Errorf("planner: source %s.%s column %s: %w", src.Site, src.Export, c.Name, err)
			}
		}
		sel.Items = append(sel.Items, sqlparser.SelectItem{Expr: e, As: c.Name})
	}
	if src.Filter != "" {
		f, err := sqlparser.ParseExpr(src.Filter)
		if err != nil {
			return nil, 0, fmt.Errorf("planner: source %s.%s filter: %w", src.Site, src.Export, err)
		}
		sel.Where = f
	}

	est := 1000.0
	if ts, ok := p.sourceStats(ctx, src.Site, src.Export); ok {
		est = float64(ts.Rows)
		if src.Filter != "" {
			if f, err := sqlparser.ParseExpr(src.Filter); err == nil {
				est *= estimateSelectivity(f, ts)
			}
		}
	}
	return &RemoteScan{Site: src.Site, Select: sel}, est, nil
}

// sourceStats resolves statistics for one export fragment: per-site
// fragment stats registered in the catalog win over the (possibly
// staler) StatsProvider cache.
func (p *Planner) sourceStats(ctx context.Context, site, export string) (*storage.TableStats, bool) {
	if p.Catalog != nil {
		if ts, ok := p.Catalog.FragmentStats(site, export); ok {
			return ts, true
		}
	}
	return p.Stats.Stats(ctx, site, export)
}

// ---------------------------------------------------------------------
// Cost-based rewrites

// pushSelections pushes WHERE conjuncts referencing a single alias into
// that alias's source scans when the combine semantics allow it. The
// residual keeps every conjunct (filters are idempotent), so partial
// pushes stay correct.
func (p *Planner) pushSelections(sel *sqlparser.Select, sets map[string]*ScanSet) {
	for _, conj := range sqlparser.SplitConjuncts(sel.Where) {
		alias, ok := singleAlias(conj, sets)
		if !ok {
			continue
		}
		ss := sets[alias]
		if ss.Def.Combine == integration.MergeOuter && !onlyKeyColumns(conj, ss.Def) {
			continue // non-key predicates are resolved post-merge
		}
		for i, src := range ss.Def.Sources {
			translated, ok := translateExpr(conj, &src, ss.Alias)
			if !ok {
				continue // source lacks a mapping: filter in residual
			}
			scan := ss.Scans[i]
			if scan.Select.Where == nil {
				scan.Select.Where = translated
			} else {
				scan.Select.Where = &sqlparser.BinaryExpr{Op: "AND", L: scan.Select.Where, R: translated}
			}
			if ts, hasStats := p.sourceStats(context.Background(), src.Site, src.Export); hasStats {
				scan.EstRows *= estimateSelectivity(translated, ts)
			} else {
				scan.EstRows *= 0.25
			}
		}
		ss.EstRows = 0
		for _, scan := range ss.Scans {
			ss.EstRows += scan.EstRows
		}
	}
}

// pruneSources drops source scans the statistics prove empty for this
// query: a fragment with zero rows, or one whose scan-level WHERE (the
// source Filter plus pushed-down selections, already in export terms)
// contains a conjunct disjoint with the column's [min, max] or over an
// all-NULL column. Pruned scans stay in ss.Scans — index-parallel with
// Def.Sources — marked with the reason; the executor substitutes an
// empty fragment instead of contacting the site.
//
// Pruning makes cached statistics correctness-bearing, so the stats
// cache must be invalidated on writes; core wires gtm commits to
// Federation.InvalidateStats, and out-of-band loads must call it
// explicitly (see internal/planner/README.md).
func (p *Planner) pruneSources(ctx context.Context, sets map[string]*ScanSet) {
	for _, ss := range sets {
		changed := false
		for i := range ss.Def.Sources {
			src := &ss.Def.Sources[i]
			scan := ss.Scans[i]
			if scan.Pruned != "" {
				continue
			}
			ts, ok := p.sourceStats(ctx, src.Site, src.Export)
			if !ok {
				continue
			}
			if reason := proveEmpty(scan.Select.Where, ts); reason != "" {
				scan.Pruned = reason
				scan.EstRows = 0
				changed = true
			}
		}
		if changed {
			ss.EstRows = 0
			for _, scan := range ss.Scans {
				ss.EstRows += scan.EstRows
			}
		}
	}
}

// proveEmpty returns a non-empty reason when the statistics prove no
// fragment row can satisfy where. Conservative: only plain
// column-vs-literal comparisons (and BETWEEN) over columns with usable
// stats are judged; everything else contributes nothing.
func proveEmpty(where sqlparser.Expr, ts *storage.TableStats) string {
	if ts.Rows == 0 {
		return "empty fragment"
	}
	for _, conj := range sqlparser.SplitConjuncts(where) {
		switch x := conj.(type) {
		case *sqlparser.BinaryExpr:
			op := x.Op
			switch op {
			case "=", "<", "<=", ">", ">=":
			default:
				continue
			}
			col, lit, ok := columnLiteral(x)
			if !ok || lit.IsNull() {
				continue
			}
			// columnLiteral loses sidedness; "lit op col" flips the op.
			if _, litLeft := x.L.(*sqlparser.Literal); litLeft {
				op = flipCompareOp(op)
			}
			cs, found := ts.Col(col)
			if !found {
				continue
			}
			if cs.Nulls == ts.Rows {
				return fmt.Sprintf("%s is all NULL", col)
			}
			if cs.Min.IsNull() || cs.Max.IsNull() {
				continue
			}
			cmpMin, ok1 := value.Compare(lit, cs.Min)
			cmpMax, ok2 := value.Compare(lit, cs.Max)
			if !ok1 || !ok2 {
				continue
			}
			disjoint := false
			switch op {
			case "=":
				disjoint = cmpMin < 0 || cmpMax > 0
			case "<":
				disjoint = cmpMin <= 0
			case "<=":
				disjoint = cmpMin < 0
			case ">":
				disjoint = cmpMax >= 0
			case ">=":
				disjoint = cmpMax > 0
			}
			if disjoint {
				return fmt.Sprintf("%s %s %s disjoint with [%s, %s]",
					col, op, lit.Text(), cs.Min.Text(), cs.Max.Text())
			}
		case *sqlparser.BetweenExpr:
			if x.Not {
				continue
			}
			cr, isCol := x.E.(*sqlparser.ColumnRef)
			lo, loLit := x.Lo.(*sqlparser.Literal)
			hi, hiLit := x.Hi.(*sqlparser.Literal)
			if !isCol || !loLit || !hiLit || lo.Val.IsNull() || hi.Val.IsNull() {
				continue
			}
			cs, found := ts.Col(cr.Column)
			if !found {
				continue
			}
			if cs.Nulls == ts.Rows {
				return fmt.Sprintf("%s is all NULL", cr.Column)
			}
			if cs.Min.IsNull() || cs.Max.IsNull() {
				continue
			}
			cmpHiMin, ok1 := value.Compare(hi.Val, cs.Min)
			cmpLoMax, ok2 := value.Compare(lo.Val, cs.Max)
			if !ok1 || !ok2 {
				continue
			}
			if cmpHiMin < 0 || cmpLoMax > 0 {
				return fmt.Sprintf("%s BETWEEN %s AND %s disjoint with [%s, %s]",
					cr.Column, lo.Val.Text(), hi.Val.Text(), cs.Min.Text(), cs.Max.Text())
			}
		}
	}
	return ""
}

// flipCompareOp mirrors a comparison across its operands.
func flipCompareOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// pushLimit pushes LIMIT into single-relation, group-free UNION ALL
// queries: each source needs only offset+count rows. With an ORDER BY
// whose keys translate at every source this becomes top-K pushdown —
// each site returns its own top (offset+count) candidates and the
// residual re-sorts the merged candidate set.
//
// A single-site subquery (one source) goes further: the one fragment
// is exactly the pre-residual row set, so the full LIMIT/OFFSET ships
// to the site — the component engine's top-K executor retains only
// offset+count rows and only count rows cross the wire. The returned
// LimitClause, when non-nil, replaces the residual's limit (the offset
// was already consumed at the site).
//
// unionBranch marks a UNION continuation (branch > 0): the final
// branch carries the ORDER BY/LIMIT of the whole union, so the exact
// single-site variant must not consume the offset against one
// fragment; only the widened over-fetch is safe there. And when any
// set operation in the chain deduplicates (unionDistinct), no
// pushdown is safe at all: the residual dedupes the merged rows
// before applying the union-wide LIMIT, so rows cut by a per-source
// over-fetch could have survived dedup.
func (p *Planner) pushLimit(sel *sqlparser.Select, sets map[string]*ScanSet, unionBranch, unionDistinct bool) *sqlparser.LimitClause {
	if sel.Limit == nil || sel.Limit.Count < 0 || len(sets) != 1 {
		return nil
	}
	// An absurd bound whose count+offset overflows buys nothing at a
	// site and would wrap the over-fetch arithmetic below; leave the
	// limit to the residual (mirrors the top-K guard in localdb).
	if sel.Limit.Count > math.MaxInt32-sel.Limit.Offset {
		return nil
	}
	if unionBranch && unionDistinct {
		return nil
	}
	if len(sel.GroupBy) > 0 || sel.Having != nil || sel.Distinct || sel.Compound != nil {
		return nil
	}
	// LIMIT below an aggregate would truncate its input.
	for _, it := range sel.Items {
		if it.Expr != nil && sqlparser.HasAggregate(it.Expr) {
			return nil
		}
	}
	for _, ss := range sets {
		if ss.Def.Combine != integration.UnionAll {
			return nil
		}
		// Only safe when every WHERE conjunct is pushable at every
		// source; a per-source Filter also populates scan WHEREs, so
		// re-verify translation rather than trusting non-nil WHERE.
		for _, conj := range sqlparser.SplitConjuncts(sel.Where) {
			alias, ok := singleAlias(conj, sets)
			if !ok || !strings.EqualFold(alias, strings.ToLower(ss.Alias)) {
				return nil
			}
			for i := range ss.Def.Sources {
				if _, ok := translateExpr(conj, &ss.Def.Sources[i], ss.Alias); !ok {
					return nil
				}
			}
		}
		// Translate ORDER BY keys per source; any failure disables the
		// pushdown entirely (the per-source top-K would be wrong).
		perSource := make([][]sqlparser.OrderItem, len(ss.Scans))
		if len(sel.OrderBy) > 0 {
			for i := range ss.Def.Sources {
				for _, o := range sel.OrderBy {
					te, ok := translateExpr(o.Expr, &ss.Def.Sources[i], ss.Alias)
					if !ok {
						return nil
					}
					perSource[i] = append(perSource[i], sqlparser.OrderItem{Expr: te, Desc: o.Desc})
				}
			}
		}
		if len(ss.Scans) == 1 && !unionBranch {
			// Single-site: ship the exact LIMIT/OFFSET; the residual
			// keeps the count (re-sorting at most count rows) but must
			// not re-apply the offset.
			scan := ss.Scans[0]
			scan.Select.OrderBy = perSource[0]
			scan.Select.Limit = &sqlparser.LimitClause{Count: sel.Limit.Count, Offset: sel.Limit.Offset}
			if scan.EstRows > float64(sel.Limit.Count) {
				scan.EstRows = float64(sel.Limit.Count)
			}
			ss.EstRows = scan.EstRows
			ss.ScanOrdering = scanOrdering(sel.OrderBy, ss)
			return &sqlparser.LimitClause{Count: sel.Limit.Count}
		}
		n := sel.Limit.Count + sel.Limit.Offset
		for i, scan := range ss.Scans {
			scan.Select.OrderBy = perSource[i]
			scan.Select.Limit = &sqlparser.LimitClause{Count: n}
			if scan.EstRows > float64(n) {
				scan.EstRows = float64(n)
			}
		}
		ss.ScanOrdering = scanOrdering(sel.OrderBy, ss)
	}
	return nil
}

// scanOrdering maps a pushed-down ORDER BY onto the scan set's schema
// columns. nil when any key is not a plain (optionally alias-qualified)
// column of the set — a merge fan-in can only compare columns it can
// see in the shipped rows.
func scanOrdering(orderBy []sqlparser.OrderItem, ss *ScanSet) []schema.SortKey {
	if len(orderBy) == 0 {
		return nil
	}
	keys := make([]schema.SortKey, 0, len(orderBy))
	for _, o := range orderBy {
		cr, ok := o.Expr.(*sqlparser.ColumnRef)
		if !ok {
			return nil
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, ss.Alias) {
			return nil
		}
		ci := -1
		for i, c := range ss.Schema.Columns {
			if strings.EqualFold(c.Name, cr.Column) {
				ci = i
				break
			}
		}
		if ci < 0 {
			return nil
		}
		keys = append(keys, schema.SortKey{Col: ci, Desc: o.Desc})
	}
	return keys
}

// chooseSemijoin finds one equi-join between two aliases where shipping
// the small (driving) side's distinct keys into the big (probe) side's
// scans pays off, and marks the probe set for the batched bind join.
// The decision is stats-driven: estimated distinct keys must fit the
// configured cap and the probe fragments must be big enough that keys
// out + matches back beats shipping the fragments whole.
func (p *Planner) chooseSemijoin(ctx context.Context, sel *sqlparser.Select, sets map[string]*ScanSet, plan *Plan) {
	maxIn := plan.MaxInList
	if maxIn <= 0 {
		maxIn = 1000
	}
	maxKeys := p.BindMaxKeys
	if maxKeys <= 0 {
		maxKeys = 100000
	}
	conds := sqlparser.SplitConjuncts(sel.Where)
	for _, j := range sel.Joins {
		if j.Kind == sqlparser.JoinInner {
			conds = append(conds, sqlparser.SplitConjuncts(j.On)...)
		}
	}
	for _, c := range conds {
		bx, ok := c.(*sqlparser.BinaryExpr)
		if !ok || bx.Op != "=" {
			continue
		}
		lc, lok := bx.L.(*sqlparser.ColumnRef)
		rc, rok := bx.R.(*sqlparser.ColumnRef)
		if !lok || !rok {
			continue
		}
		la, lcol, ok1 := ownerOf(lc, sets)
		ra, rcol, ok2 := ownerOf(rc, sets)
		if !ok1 || !ok2 || la == ra {
			continue
		}
		small, big := sets[la], sets[ra]
		smallCol, bigCol := lcol, rcol
		if small.EstRows > big.EstRows {
			small, big = big, small
			smallCol, bigCol = bigCol, smallCol
		}
		// Shipped keys must compare on the probe site exactly as the
		// residual join would; mismatched type classes would lean on
		// per-site coercion semantics, so fall back to ship-all.
		if !comparableJoinCols(small.Def, smallCol, big.Def, bigCol) {
			continue
		}
		probes := liveScanCount(big)
		if probes == 0 {
			continue // every probe fragment pruned; nothing to reduce
		}
		keys := p.estimateKeys(ctx, small, smallCol)
		if keys > maxKeys {
			continue // IN-lists would exceed the configured key budget
		}
		// Probe rows matching the keys ship either way; the bind join
		// pays keys out (once per live probe scan) plus matches back,
		// against ship-all's full fragment set.
		match := big.EstRows
		if bd := p.estimateKeys(ctx, big, bigCol); bd > 0 && keys < bd {
			match = big.EstRows * keys / bd
		}
		if big.EstRows < keys*p.SemiMinRatio || big.EstRows <= keys*float64(probes)+match {
			continue
		}
		if big.SemiFrom != "" || small.SemiFrom != "" {
			continue // one reduction per scan set; chains need the DAG executor ordering anyway
		}
		// Probe-side pushdown must be semantically safe, like selections.
		if big.Def.Combine == integration.MergeOuter && !keyColumn(big.Def, bigCol) {
			continue
		}
		// Every probe source must map the probe column.
		probeExprs := make([]sqlparser.Expr, len(big.Def.Sources))
		allMapped := true
		for i, src := range big.Def.Sources {
			mapped, ok := src.MapFold(bigCol)
			if !ok {
				allMapped = false
				break
			}
			e, err := sqlparser.ParseExpr(mapped)
			if err != nil {
				allMapped = false
				break
			}
			probeExprs[i] = e
		}
		if !allMapped {
			continue
		}
		big.SemiFrom = small.Alias
		big.SemiBuildCol = smallCol
		for i := range big.Scans {
			big.Scans[i].SemiProbe = probeExprs[i]
		}
		big.SemiBind = true
		big.EstKeys = keys
		big.EstBatches = int(math.Ceil(keys / float64(maxIn)))
		if big.EstBatches < 1 {
			big.EstBatches = 1
		}
		return // one semijoin per query keeps the executor's DAG simple
	}
}

// liveScanCount counts the scans source selection did not prune.
func liveScanCount(ss *ScanSet) int {
	n := 0
	for _, sc := range ss.Scans {
		if sc.Pruned == "" {
			n++
		}
	}
	return n
}

// comparableJoinCols reports whether two integrated join columns share
// a comparison class (ints and floats interchange; anything else must
// match exactly), i.e. a shipped IN-list of build keys filters the
// probe site exactly as the residual join predicate would.
func comparableJoinCols(a *catalog.IntegratedDef, acol string, b *catalog.IntegratedDef, bcol string) bool {
	ai, bi := a.ColIndex(acol), b.ColIndex(bcol)
	if ai < 0 || bi < 0 {
		return false
	}
	at, bt := a.Columns[ai].Type, b.Columns[bi].Type
	numeric := func(t schema.Type) bool { return t == schema.TInt || t == schema.TFloat }
	if numeric(at) && numeric(bt) {
		return true
	}
	return at == bt
}

// estimateKeys estimates the distinct values of integrated column col
// across ss's live scans: per scan, the column's distinct count capped
// by the scan's post-pushdown row estimate, summed (floored at 1).
func (p *Planner) estimateKeys(ctx context.Context, ss *ScanSet, col string) float64 {
	total := 0.0
	for i := range ss.Def.Sources {
		src := &ss.Def.Sources[i]
		scan := ss.Scans[i]
		if scan.Pruned != "" {
			continue
		}
		d := scan.EstRows
		if mapped, ok := src.MapFold(col); ok {
			if e, err := sqlparser.ParseExpr(mapped); err == nil {
				if cr, isCol := e.(*sqlparser.ColumnRef); isCol {
					if ts, found := p.sourceStats(ctx, src.Site, src.Export); found {
						if cs, has := ts.Col(cr.Column); has && cs.Distinct > 0 && float64(cs.Distinct) < d {
							d = float64(cs.Distinct)
						}
					}
				}
			}
		}
		total += d
	}
	if total < 1 {
		total = 1
	}
	return total
}

// reorderJoins rewrites all-inner join trees into a FROM list ordered by
// ascending estimated cardinality, folding ON conditions into WHERE; the
// local engine then hash-joins left to right.
func reorderJoins(sel *sqlparser.Select, sets map[string]*ScanSet) {
	if len(sel.Joins) == 0 {
		return
	}
	for _, j := range sel.Joins {
		if j.Kind != sqlparser.JoinInner {
			return
		}
	}
	refs := append([]sqlparser.TableRef{}, sel.From...)
	conds := []sqlparser.Expr{}
	for _, j := range sel.Joins {
		refs = append(refs, j.Table)
		conds = append(conds, sqlparser.SplitConjuncts(j.On)...)
	}
	sort.SliceStable(refs, func(a, b int) bool {
		sa, sb := sets[strings.ToLower(refs[a].EffectiveName())], sets[strings.ToLower(refs[b].EffectiveName())]
		if sa == nil || sb == nil {
			return false
		}
		return sa.EstRows < sb.EstRows
	})
	sel.From = refs
	sel.Joins = nil
	conds = append(conds, sqlparser.SplitConjuncts(sel.Where)...)
	sel.Where = sqlparser.JoinConjuncts(conds)
}

// ---------------------------------------------------------------------
// Helpers

// singleAlias reports the one alias an expression references (ok=false
// when zero or several, or when a column is unknown).
func singleAlias(e sqlparser.Expr, sets map[string]*ScanSet) (string, bool) {
	owner := ""
	ok := true
	for _, cr := range sqlparser.ColumnsIn(e) {
		a, _, found := ownerOf(cr, sets)
		if !found {
			ok = false
			break
		}
		if owner == "" {
			owner = a
		} else if owner != a {
			ok = false
			break
		}
	}
	return owner, ok && owner != ""
}

// ownerOf resolves a column reference to (alias, column).
func ownerOf(cr *sqlparser.ColumnRef, sets map[string]*ScanSet) (string, string, bool) {
	if cr.Table != "" {
		a := strings.ToLower(cr.Table)
		ss, ok := sets[a]
		if !ok || ss.Def.ColIndex(cr.Column) < 0 {
			return "", "", false
		}
		return a, cr.Column, true
	}
	owner := ""
	for a, ss := range sets {
		if ss.Def.ColIndex(cr.Column) >= 0 {
			if owner != "" {
				return "", "", false
			}
			owner = a
		}
	}
	if owner == "" {
		return "", "", false
	}
	return owner, cr.Column, true
}

// onlyKeyColumns reports whether e references only the integrated key.
func onlyKeyColumns(e sqlparser.Expr, def *catalog.IntegratedDef) bool {
	for _, cr := range sqlparser.ColumnsIn(e) {
		if !keyColumn(def, cr.Column) {
			return false
		}
	}
	return true
}

func keyColumn(def *catalog.IntegratedDef, col string) bool {
	for _, k := range def.Key {
		if strings.EqualFold(k, col) {
			return true
		}
	}
	return false
}

// translateExpr rewrites a predicate over integrated columns into one
// over the source export's columns via the ColumnMap; ok=false when some
// referenced column is unmapped.
func translateExpr(e sqlparser.Expr, src *catalog.SourceDef, alias string) (sqlparser.Expr, bool) {
	ok := true
	out := sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
		cr, isCol := x.(*sqlparser.ColumnRef)
		if !isCol {
			return x
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, alias) {
			ok = false
			return x
		}
		mapped, found := src.MapFold(cr.Column)
		if !found {
			ok = false
			return x
		}
		me, err := sqlparser.ParseExpr(mapped)
		if err != nil {
			ok = false
			return x
		}
		return me
	})
	if !ok {
		return nil, false
	}
	return out, true
}

// estimateSelectivity is the classic System-R style rule set over
// per-column statistics.
func estimateSelectivity(e sqlparser.Expr, ts *storage.TableStats) float64 {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "AND":
			return estimateSelectivity(x.L, ts) * estimateSelectivity(x.R, ts)
		case "OR":
			l, r := estimateSelectivity(x.L, ts), estimateSelectivity(x.R, ts)
			return l + r - l*r
		case "=":
			if col, ok := columnSide(x); ok {
				if cs, found := ts.Col(col); found && cs.Distinct > 0 {
					return 1 / float64(cs.Distinct)
				}
			}
			return 0.1
		case "<", "<=", ">", ">=":
			if col, lit, ok := columnLiteral(x); ok {
				if s, found := rangeSelectivity(col, lit, x.Op, ts); found {
					return s
				}
			}
			return 1.0 / 3
		case "<>":
			return 0.9
		case "LIKE":
			return 0.25
		}
	case *sqlparser.InExpr:
		if col, ok := x.E.(*sqlparser.ColumnRef); ok {
			if cs, found := ts.Col(col.Column); found && cs.Distinct > 0 {
				s := float64(len(x.List)) / float64(cs.Distinct)
				if s > 1 {
					s = 1
				}
				if x.Not {
					return 1 - s
				}
				return s
			}
		}
		return 0.2
	case *sqlparser.BetweenExpr:
		return 1.0 / 4
	case *sqlparser.IsNullExpr:
		if cr, ok := x.E.(*sqlparser.ColumnRef); ok {
			if cs, found := ts.Col(cr.Column); found && ts.Rows > 0 {
				s := float64(cs.Nulls) / float64(ts.Rows)
				if x.Not {
					return 1 - s
				}
				return s
			}
		}
		return 0.05
	case *sqlparser.UnaryExpr:
		if x.Op == "NOT" {
			return 1 - estimateSelectivity(x.E, ts)
		}
	}
	return 1.0 / 3
}

func columnSide(x *sqlparser.BinaryExpr) (string, bool) {
	if c, ok := x.L.(*sqlparser.ColumnRef); ok {
		return c.Column, true
	}
	if c, ok := x.R.(*sqlparser.ColumnRef); ok {
		return c.Column, true
	}
	return "", false
}

func columnLiteral(x *sqlparser.BinaryExpr) (string, value.Value, bool) {
	if c, ok := x.L.(*sqlparser.ColumnRef); ok {
		if l, ok := x.R.(*sqlparser.Literal); ok {
			return c.Column, l.Val, true
		}
	}
	if c, ok := x.R.(*sqlparser.ColumnRef); ok {
		if l, ok := x.L.(*sqlparser.Literal); ok {
			return c.Column, l.Val, true
		}
	}
	return "", value.Value{}, false
}

// rangeSelectivity interpolates within [min, max] for numeric columns.
func rangeSelectivity(col string, lit value.Value, op string, ts *storage.TableStats) (float64, bool) {
	cs, found := ts.Col(col)
	if !found || cs.Min.IsNull() || cs.Max.IsNull() {
		return 0, false
	}
	lo, ok1 := cs.Min.Float()
	hi, ok2 := cs.Max.Float()
	v, ok3 := lit.Float()
	if !ok1 || !ok2 || !ok3 || hi <= lo {
		return 0, false
	}
	frac := (v - lo) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	switch op {
	case "<", "<=":
		return frac, true
	default: // ">", ">="
		return 1 - frac, true
	}
}

package lockmgr

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitParked spins until m has at least n live waits-for edges (a
// goroutine's Acquire has actually enqueued), or fails the test.
func waitParked(t *testing.T, m *Manager, n int) []Edge {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		edges := m.WaitsFor()
		if len(edges) >= n {
			return edges
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d waits-for edges (have %d)", n, len(edges))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWaitsForEdges(t *testing.T) {
	m := New()
	// Detection-only: the wound-wait fast path would refuse the young
	// wait below before it ever parked.
	m.SetWoundWait(false)
	m.SetPriority(1, 10)
	m.SetPriority(2, 20)

	if err := m.Acquire(bg(), 1, "r", X); err != nil {
		t.Fatal(err)
	}
	if len(m.WaitsFor()) != 0 {
		t.Fatal("edges with nobody waiting")
	}

	done := make(chan error, 1)
	go func() { done <- m.Acquire(bg(), 2, "r", X) }()
	edges := waitParked(t, m, 1)
	e := edges[0]
	if e.Waiter != 2 || e.WaiterGID != 20 || e.Resource != "r" {
		t.Fatalf("edge = %+v", e)
	}
	if len(e.Holders) != 1 || e.Holders[0] != 1 || e.HolderGIDs[0] != 10 {
		t.Fatalf("edge holders = %+v", e)
	}
	if e.Since.IsZero() || time.Since(e.Since) < 0 {
		t.Fatalf("edge since = %v", e.Since)
	}

	// Granting the wait removes the edge.
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(m.WaitsFor()) != 0 {
		t.Fatal("edge survived its grant")
	}
	m.ReleaseAll(2)
}

// TestWaitsForQueuePredecessors: a waiter behind another queued waiter
// reports the FIFO predecessor as a blocker too — the coordinator must
// see the true wait order, not just lock holders.
func TestWaitsForQueuePredecessors(t *testing.T) {
	m := New()
	m.SetWoundWait(false)
	if err := m.Acquire(bg(), 1, "r", X); err != nil {
		t.Fatal(err)
	}
	d2 := make(chan error, 1)
	go func() { d2 <- m.Acquire(bg(), 2, "r", X) }()
	waitParked(t, m, 1)
	d3 := make(chan error, 1)
	go func() { d3 <- m.Acquire(bg(), 3, "r", X) }()
	edges := waitParked(t, m, 2)

	var third *Edge
	for i := range edges {
		if edges[i].Waiter == 3 {
			third = &edges[i]
		}
	}
	if third == nil {
		t.Fatalf("no edge for txn 3: %+v", edges)
	}
	seen := map[TxnID]bool{}
	for _, h := range third.Holders {
		seen[h] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("txn 3 blockers = %v, want holder 1 and queue predecessor 2", third.Holders)
	}

	m.ReleaseAll(1)
	if err := <-d2; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-d3; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestAbortWaiterWoundsParkedWait(t *testing.T) {
	m := New()
	if err := m.Acquire(bg(), 1, "r", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(bg(), 2, "r", X) }()
	waitParked(t, m, 1)

	if !m.AbortWaiter(2) {
		t.Fatal("AbortWaiter found no parked wait")
	}
	if err := <-done; !errors.Is(err, ErrWounded) {
		t.Fatalf("parked wait returned %v, want ErrWounded", err)
	}
	// The wound sticks until rollback: re-acquire fails without parking.
	if err := m.Acquire(bg(), 2, "other", S); !errors.Is(err, ErrWounded) {
		t.Fatalf("post-wound acquire returned %v, want ErrWounded", err)
	}
	if len(m.WaitsFor()) != 0 {
		t.Fatal("wounded waiter left an edge behind")
	}
	// ReleaseAll (the rollback) clears the mark; the txn id is reusable.
	m.ReleaseAll(2)
	if err := m.Acquire(bg(), 2, "other", S); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)

	// Wounding a transaction with no parked wait reports false but still
	// poisons its next acquire.
	if m.AbortWaiter(3) {
		t.Fatal("AbortWaiter(3) reported a parked wait")
	}
	if err := m.Acquire(bg(), 3, "r", S); !errors.Is(err, ErrWounded) {
		t.Fatalf("acquire after no-wait wound returned %v", err)
	}
	m.ReleaseAll(3)
}

// TestWoundWaitFastPath: a younger global branch is refused immediately
// when it would park behind an older global one; old-waits-on-young
// still parks, and local (unprioritized) transactions are never
// preempted.
func TestWoundWaitFastPath(t *testing.T) {
	m := New()
	m.SetPriority(1, 10) // older global
	m.SetPriority(2, 20) // younger global

	if err := m.Acquire(bg(), 1, "r", X); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(bg(), 2, "r", X); !errors.Is(err, ErrWounded) {
		t.Fatalf("young-waits-on-old returned %v, want ErrWounded", err)
	}

	// Old waiting on young parks normally.
	if err := m.Acquire(bg(), 2, "s", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(bg(), 1, "s", X) }()
	waitParked(t, m, 1)
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)

	// A local transaction is never wounded, and a global waiting on a
	// local parks (the local holder carries no age to compare).
	if err := m.Acquire(bg(), 3, "u", X); err != nil { // local holder
		t.Fatal(err)
	}
	m.SetPriority(4, 40)
	d4 := make(chan error, 1)
	go func() { d4 <- m.Acquire(bg(), 4, "u", X) }()
	waitParked(t, m, 1)
	m.ReleaseAll(3)
	if err := <-d4; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(4)

	// With the fast path off, young-waits-on-old parks too.
	m.SetWoundWait(false)
	m.SetPriority(5, 10)
	m.SetPriority(6, 20)
	if err := m.Acquire(bg(), 5, "v", X); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg(), 50*time.Millisecond)
	defer cancel()
	if err := m.Acquire(ctx, 6, "v", X); !errors.Is(err, ErrTimeout) {
		t.Fatalf("detection-only young wait returned %v, want ErrTimeout", err)
	}
	m.ReleaseAll(5)
	m.ReleaseAll(6)
}

// TestRegrantLeavesNoPhantomEdges: recovery's Regrant installs holders
// without queueing, so the waits-for snapshot stays empty — a detector
// polling during recovery must not read restored locks as waits.
func TestRegrantLeavesNoPhantomEdges(t *testing.T) {
	m := New()
	m.SetPriority(1, 10)
	m.Regrant(1, "t/acct", IX)
	m.Regrant(1, "t/acct/r1", X)
	m.Regrant(1, "t/acct/r1", X) // idempotent re-merge
	if len(m.WaitsFor()) != 0 {
		t.Fatalf("Regrant produced waits-for edges: %+v", m.WaitsFor())
	}
	if mode, ok := m.Holding(1, "t/acct/r1"); !ok || mode != X {
		t.Fatalf("regranted lock = %v, %v", mode, ok)
	}

	// A live waiter behind a regranted lock produces a normal edge with
	// the recovered branch as holder — and only that edge.
	m.SetPriority(2, 20)
	m.SetWoundWait(false)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(bg(), 2, "t/acct/r1", S) }()
	edges := waitParked(t, m, 1)
	if len(edges) != 1 || edges[0].Waiter != 2 || edges[0].Holders[0] != 1 {
		t.Fatalf("edges = %+v", edges)
	}
	// Releasing the recovered branch grants the waiter and clears the
	// graph; no phantom edge survives for a cycle to be read from.
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(m.WaitsFor()) != 0 {
		t.Fatal("edge survived the grant")
	}
	m.ReleaseAll(2)
}

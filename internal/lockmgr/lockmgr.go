// Package lockmgr implements the strict two-phase-locking manager used
// by each component DBMS, mirroring the paper's "each integrated local
// DBMS employs two-phase locking (2PL)".
//
// Lock modes form the classic hierarchy: intention locks (IS, IX) at
// table granularity combined with S/X row locks, plus table-level S/X
// for scans and bulk writes. Deadlocks are handled in three tiers:
//
//  1. Age-based preemption at wait time: branches of global
//     transactions carry a priority (the global transaction id, older =
//     smaller) via SetPriority; a younger global branch about to park
//     behind an older one is refused immediately with ErrWounded, so a
//     cycle between global transactions can never form locally.
//  2. Detection: WaitsFor exposes the live waits-for edges, which the
//     global transaction manager pulls from every site, stitches into
//     the federation-wide graph, and resolves by wounding the youngest
//     global transaction in any cycle (AbortWaiter fails its parked
//     wait with ErrWounded without burning the timeout).
//  3. Backstop: waits still respect context deadlines; a timeout
//     surfaces as ErrTimeout and the caller aborts the transaction —
//     the paper's presume-deadlock-on-timeout policy, now demoted from
//     the primary mechanism to the last resort.
package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes, weakest to strongest.
const (
	IS Mode = iota
	IX
	S
	X
)

// String returns the conventional mode name.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// compatible reports whether two modes may be held simultaneously by
// different transactions (standard multi-granularity matrix).
func compatible(a, b Mode) bool {
	switch a {
	case IS:
		return b != X
	case IX:
		return b == IS || b == IX
	case S:
		return b == IS || b == S
	case X:
		return false
	}
	return false
}

// stronger reports whether mode a subsumes mode b for the same holder.
func stronger(a, b Mode) bool {
	if a == b {
		return true
	}
	switch a {
	case X:
		return true
	case S:
		return b == IS
	case IX:
		return b == IS
	default:
		return false
	}
}

// upgrade returns the combined mode when a holder of cur requests want.
func upgrade(cur, want Mode) Mode {
	if stronger(cur, want) {
		return cur
	}
	if stronger(want, cur) {
		return want
	}
	// IX + S (or S + IX) = SIX in textbooks; X is a safe (conservative)
	// stand-in in this engine and keeps the matrix small.
	return X
}

// ErrTimeout is returned when a lock wait exceeds the context deadline.
// The caller interprets it as a presumed deadlock.
var ErrTimeout = errors.New("lockmgr: lock wait timeout (presumed deadlock)")

// ErrWounded is returned when a lock wait is preempted because the
// transaction was chosen as a deadlock victim: either the wound-wait
// fast path refused to park a younger global branch behind an older
// one, or AbortWaiter killed a parked wait on the coordinator's orders.
// The transaction must abort; the client may retry it under a fresh
// (younger) global id.
var ErrWounded = errors.New("lockmgr: lock wait wounded (deadlock victim)")

// ErrUpgradeDeadlock is returned without waiting when a lock upgrade is
// provably doomed: another transaction already holds the resource AND
// waits on an upgrade incompatible with the requester's current lock,
// while the requester's upgrade is incompatible with that holder's lock
// — under strict 2PL neither can ever proceed (the classic two-S-
// holders-both-want-X deadlock). It wraps ErrTimeout so callers treat
// it with presumed-deadlock semantics, just detected locally and
// immediately instead of after burning the full lock-wait timeout.
var ErrUpgradeDeadlock = fmt.Errorf("lockmgr: mutual lock-upgrade deadlock: %w", ErrTimeout)

// TxnID identifies a lock owner.
type TxnID uint64

// Manager is a lock table. The zero value is not usable; call New.
type Manager struct {
	mu    sync.Mutex
	locks map[string]*lockState
	held  map[TxnID]map[string]Mode // for ReleaseAll and re-entry

	// prios maps a transaction to its global-transaction id (0 = a
	// purely local transaction). Ids are assigned monotonically by the
	// coordinator, so smaller means older; the wound-wait fast path and
	// the exported waits-for edges both read them.
	prios map[TxnID]uint64
	// wounded marks transactions chosen as deadlock victims: their
	// parked waits were failed and any acquire they attempt before
	// ReleaseAll fails too, so a victim mid-statement cannot re-park
	// between the wound and its rollback.
	wounded   map[TxnID]bool
	woundWait bool
}

type lockState struct {
	holders map[TxnID]Mode
	// waiters are FIFO to prevent starvation.
	waiters []*waiter
}

type waiter struct {
	txn   TxnID
	mode  Mode
	ch    chan struct{} // closed when granted or wounded
	err   error         // set (before ch closes) when wounded
	since time.Time
}

// New returns an empty lock manager. Wound-wait preemption between
// prioritized (global) transactions is on by default; SetWoundWait
// disables it for deployments that prefer pure detection.
func New() *Manager {
	return &Manager{
		locks:     make(map[string]*lockState),
		held:      make(map[TxnID]map[string]Mode),
		prios:     make(map[TxnID]uint64),
		wounded:   make(map[TxnID]bool),
		woundWait: true,
	}
}

// SetPriority tags txn with its global transaction id (0 clears the
// tag). Branches of global transactions set it at begin; ReleaseAll
// clears it.
func (m *Manager) SetPriority(txn TxnID, gid uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if gid == 0 {
		delete(m.prios, txn)
		return
	}
	m.prios[txn] = gid
}

// SetWoundWait toggles the age-based preemption fast path. Detection
// via WaitsFor/AbortWaiter keeps working either way.
func (m *Manager) SetWoundWait(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.woundWait = on
}

// Acquire blocks until txn holds resource in mode (or stronger), the
// context is done, or the wait times out. Strict 2PL: locks are only
// released by ReleaseAll at commit/abort.
func (m *Manager) Acquire(ctx context.Context, txn TxnID, resource string, mode Mode) error {
	m.mu.Lock()
	if m.wounded[txn] {
		m.mu.Unlock()
		return ErrWounded
	}
	ls, ok := m.locks[resource]
	if !ok {
		ls = &lockState{holders: make(map[TxnID]Mode)}
		m.locks[resource] = ls
	}
	cur, holding := ls.holders[txn]
	if holding && stronger(cur, mode) {
		m.mu.Unlock()
		return nil
	}
	want := mode
	if holding {
		want = upgrade(cur, mode)
	}
	if m.grantable(ls, txn, want) {
		ls.holders[txn] = want
		m.note(txn, resource, want)
		m.mu.Unlock()
		return nil
	}
	// A doomed upgrade fails now rather than timing out: if a queued
	// waiter also holds this resource (it is upgrading too), and the two
	// transactions' requests are mutually blocked by each other's held
	// locks, strict 2PL guarantees neither ever advances. The younger
	// request — this one — loses.
	if holding {
		for _, q := range ls.waiters {
			heldQ, owns := ls.holders[q.txn]
			if !owns || q.txn == txn {
				continue
			}
			wantQ := upgrade(heldQ, q.mode)
			if !compatible(want, heldQ) && !compatible(wantQ, cur) {
				m.mu.Unlock()
				return ErrUpgradeDeadlock
			}
		}
	}
	// Wound-wait fast path: a younger global branch never parks behind
	// an older one — it is refused here, its global transaction aborts,
	// and the client retries under a fresh id. Since every surviving
	// global-vs-global wait is then old-waits-on-young, no cycle made
	// purely of global transactions can form at this site.
	if m.woundWait {
		if wgid := m.prios[txn]; wgid != 0 {
			for _, b := range m.blockers(ls, txn, want, len(ls.waiters), true) {
				if hgid := m.prios[b]; hgid != 0 && hgid < wgid {
					m.mu.Unlock()
					return ErrWounded
				}
			}
		}
	}
	w := &waiter{txn: txn, mode: want, ch: make(chan struct{}), since: time.Now()}
	ls.waiters = append(ls.waiters, w)
	m.mu.Unlock()

	select {
	case <-w.ch:
		return w.err
	case <-ctx.Done():
		m.mu.Lock()
		// Remove from the queue unless already granted (or wounded) in
		// the race.
		select {
		case <-w.ch:
			m.mu.Unlock()
			return w.err
		default:
		}
		for i, q := range ls.waiters {
			if q == w {
				ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
				break
			}
		}
		m.promote(resource, ls)
		m.mu.Unlock()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return ErrTimeout
		}
		return ctx.Err()
	}
}

// grantable reports whether txn can hold `mode` on ls given other
// holders; callers hold m.mu. A transaction's own existing lock never
// conflicts with its upgrade.
func (m *Manager) grantable(ls *lockState, txn TxnID, mode Mode) bool {
	for other, held := range ls.holders {
		if other == txn {
			continue
		}
		if !compatible(mode, held) {
			return false
		}
	}
	// FIFO fairness: a new request must also not jump over queued
	// waiters it conflicts with (upgrades may, to avoid self-deadlock).
	if _, upgrading := ls.holders[txn]; !upgrading {
		for _, w := range ls.waiters {
			if w.txn != txn && !compatible(mode, w.mode) {
				return false
			}
		}
	}
	return true
}

// blockers returns the transactions a request by txn for mode cannot
// proceed past: every other holder of an incompatible mode, plus the
// queued waiters ahead of position pos (FIFO order means they must
// leave the queue first). When conflictingOnly is set, queued waiters
// count only if their requested mode conflicts — the wound-wait fast
// path preempts on genuine conflicts, while the waits-for edges keep
// every FIFO predecessor so cycle detection sees the true wait order.
// Callers hold m.mu.
func (m *Manager) blockers(ls *lockState, txn TxnID, mode Mode, pos int, conflictingOnly bool) []TxnID {
	var out []TxnID
	seen := make(map[TxnID]bool)
	for other, held := range ls.holders {
		if other == txn || compatible(mode, held) {
			continue
		}
		if !seen[other] {
			seen[other] = true
			out = append(out, other)
		}
	}
	for i := 0; i < pos && i < len(ls.waiters); i++ {
		q := ls.waiters[i]
		if q.txn == txn || seen[q.txn] {
			continue
		}
		if conflictingOnly && compatible(mode, q.mode) {
			continue
		}
		seen[q.txn] = true
		out = append(out, q.txn)
	}
	return out
}

// Edge is one live waits-for edge: Waiter has been parked on Resource
// since Since, unable to proceed past Holders (current holders of
// conflicting modes plus FIFO queue predecessors). WaiterGID and
// HolderGIDs carry the global-transaction ids registered via
// SetPriority (0 = purely local), so the coordinator can stitch edges
// from many sites into one graph keyed by global id.
type Edge struct {
	Waiter     TxnID
	WaiterGID  uint64
	Holders    []TxnID
	HolderGIDs []uint64
	Resource   string
	Since      time.Time
}

// WaitsFor snapshots the live waits-for edges. Edges exist exactly
// while a waiter is parked — they appear when Acquire enqueues, and
// vanish when promote grants, a timeout removes the waiter, or
// AbortWaiter wounds it — so a recovery-time Regrant (which installs
// holders without waiting) can never leave a phantom edge behind.
func (m *Manager) WaitsFor() []Edge {
	m.mu.Lock()
	defer m.mu.Unlock()
	var edges []Edge
	for resource, ls := range m.locks {
		for i, w := range ls.waiters {
			bs := m.blockers(ls, w.txn, w.mode, i, false)
			if len(bs) == 0 {
				// Transiently grantable (promote will get to it);
				// an edge with no blockers is noise.
				continue
			}
			gids := make([]uint64, len(bs))
			for j, b := range bs {
				gids[j] = m.prios[b]
			}
			edges = append(edges, Edge{
				Waiter:     w.txn,
				WaiterGID:  m.prios[w.txn],
				Holders:    bs,
				HolderGIDs: gids,
				Resource:   resource,
				Since:      w.since,
			})
		}
	}
	return edges
}

// AbortWaiter wounds txn as a deadlock victim: every wait it has
// parked fails immediately with ErrWounded, and any acquire it
// attempts before its locks are released fails the same way (closing
// the race where the victim is between lock requests when the wound
// lands). It reports whether a parked wait was actually failed. The
// caller must follow with a rollback so ReleaseAll clears the wounded
// mark.
func (m *Manager) AbortWaiter(txn TxnID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wounded[txn] = true
	hit := false
	for resource, ls := range m.locks {
		for i := 0; i < len(ls.waiters); {
			w := ls.waiters[i]
			if w.txn != txn {
				i++
				continue
			}
			ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
			w.err = ErrWounded
			close(w.ch)
			hit = true
		}
		m.promote(resource, ls)
		if len(ls.holders) == 0 && len(ls.waiters) == 0 {
			delete(m.locks, resource)
		}
	}
	return hit
}

// note records a held lock for ReleaseAll; callers hold m.mu.
func (m *Manager) note(txn TxnID, resource string, mode Mode) {
	hm := m.held[txn]
	if hm == nil {
		hm = make(map[string]Mode)
		m.held[txn] = hm
	}
	hm[resource] = mode
}

// promote grants queued waiters in FIFO order; callers hold m.mu.
func (m *Manager) promote(resource string, ls *lockState) {
	for len(ls.waiters) > 0 {
		w := ls.waiters[0]
		// Compute the effective request (upgrade if already holding).
		want := w.mode
		if cur, ok := ls.holders[w.txn]; ok {
			want = upgrade(cur, w.mode)
		}
		granted := true
		for other, held := range ls.holders {
			if other != w.txn && !compatible(want, held) {
				granted = false
				break
			}
		}
		if !granted {
			return
		}
		ls.holders[w.txn] = want
		m.note(w.txn, resource, want)
		ls.waiters = ls.waiters[1:]
		close(w.ch)
	}
	if len(ls.holders) == 0 && len(ls.waiters) == 0 {
		delete(m.locks, resource)
	}
}

// ReleaseAll drops every lock held by txn (commit/abort in strict 2PL)
// and wakes eligible waiters.
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for resource := range m.held[txn] {
		ls := m.locks[resource]
		if ls == nil {
			continue
		}
		delete(ls.holders, txn)
		m.promote(resource, ls)
		if len(ls.holders) == 0 && len(ls.waiters) == 0 {
			delete(m.locks, resource)
		}
	}
	delete(m.held, txn)
	delete(m.prios, txn)
	delete(m.wounded, txn)
}

// Holding returns the mode txn holds on resource (ok=false when none).
func (m *Manager) Holding(txn TxnID, resource string) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mode, ok := m.held[txn][resource]
	return mode, ok
}

// HeldCount returns how many resources txn currently locks.
func (m *Manager) HeldCount(txn TxnID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[txn])
}

// HeldLocks returns a snapshot of every lock txn holds, as
// resource→mode. Two-phase commit logs it in the prepare record so a
// recovered prepared branch can re-acquire exactly these locks.
func (m *Manager) HeldLocks(txn TxnID) map[string]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]Mode, len(m.held[txn]))
	for r, mode := range m.held[txn] {
		out[r] = mode
	}
	return out
}

// Regrant installs a lock without waiting, merging with any mode txn
// already holds. Recovery uses it to restore a prepared branch's locks
// before the database serves new transactions, so nothing can conflict;
// it must not be called on a contended live lock table.
func (m *Manager) Regrant(txn TxnID, resource string, mode Mode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls, ok := m.locks[resource]
	if !ok {
		ls = &lockState{holders: make(map[TxnID]Mode)}
		m.locks[resource] = ls
	}
	if cur, ok := ls.holders[txn]; ok {
		mode = upgrade(cur, mode)
	}
	ls.holders[txn] = mode
	m.note(txn, resource, mode)
}

// Package lockmgr implements the strict two-phase-locking manager used
// by each component DBMS, mirroring the paper's "each integrated local
// DBMS employs two-phase locking (2PL)".
//
// Lock modes form the classic hierarchy: intention locks (IS, IX) at
// table granularity combined with S/X row locks, plus table-level S/X
// for scans and bulk writes. Waits respect context deadlines; a timeout
// surfaces as ErrTimeout, which the gateway reports upward so the global
// transaction manager can presume a (possibly global) deadlock and abort
// the whole global transaction — exactly the paper's resolution policy.
package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes, weakest to strongest.
const (
	IS Mode = iota
	IX
	S
	X
)

// String returns the conventional mode name.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// compatible reports whether two modes may be held simultaneously by
// different transactions (standard multi-granularity matrix).
func compatible(a, b Mode) bool {
	switch a {
	case IS:
		return b != X
	case IX:
		return b == IS || b == IX
	case S:
		return b == IS || b == S
	case X:
		return false
	}
	return false
}

// stronger reports whether mode a subsumes mode b for the same holder.
func stronger(a, b Mode) bool {
	if a == b {
		return true
	}
	switch a {
	case X:
		return true
	case S:
		return b == IS
	case IX:
		return b == IS
	default:
		return false
	}
}

// upgrade returns the combined mode when a holder of cur requests want.
func upgrade(cur, want Mode) Mode {
	if stronger(cur, want) {
		return cur
	}
	if stronger(want, cur) {
		return want
	}
	// IX + S (or S + IX) = SIX in textbooks; X is a safe (conservative)
	// stand-in in this engine and keeps the matrix small.
	return X
}

// ErrTimeout is returned when a lock wait exceeds the context deadline.
// The caller interprets it as a presumed deadlock.
var ErrTimeout = errors.New("lockmgr: lock wait timeout (presumed deadlock)")

// ErrUpgradeDeadlock is returned without waiting when a lock upgrade is
// provably doomed: another transaction already holds the resource AND
// waits on an upgrade incompatible with the requester's current lock,
// while the requester's upgrade is incompatible with that holder's lock
// — under strict 2PL neither can ever proceed (the classic two-S-
// holders-both-want-X deadlock). It wraps ErrTimeout so callers treat
// it with presumed-deadlock semantics, just detected locally and
// immediately instead of after burning the full lock-wait timeout.
var ErrUpgradeDeadlock = fmt.Errorf("lockmgr: mutual lock-upgrade deadlock: %w", ErrTimeout)

// TxnID identifies a lock owner.
type TxnID uint64

// Manager is a lock table. The zero value is not usable; call New.
type Manager struct {
	mu    sync.Mutex
	locks map[string]*lockState
	held  map[TxnID]map[string]Mode // for ReleaseAll and re-entry
}

type lockState struct {
	holders map[TxnID]Mode
	// waiters are FIFO to prevent starvation.
	waiters []*waiter
}

type waiter struct {
	txn  TxnID
	mode Mode
	ch   chan struct{} // closed when granted
}

// New returns an empty lock manager.
func New() *Manager {
	return &Manager{
		locks: make(map[string]*lockState),
		held:  make(map[TxnID]map[string]Mode),
	}
}

// Acquire blocks until txn holds resource in mode (or stronger), the
// context is done, or the wait times out. Strict 2PL: locks are only
// released by ReleaseAll at commit/abort.
func (m *Manager) Acquire(ctx context.Context, txn TxnID, resource string, mode Mode) error {
	m.mu.Lock()
	ls, ok := m.locks[resource]
	if !ok {
		ls = &lockState{holders: make(map[TxnID]Mode)}
		m.locks[resource] = ls
	}
	cur, holding := ls.holders[txn]
	if holding && stronger(cur, mode) {
		m.mu.Unlock()
		return nil
	}
	want := mode
	if holding {
		want = upgrade(cur, mode)
	}
	if m.grantable(ls, txn, want) {
		ls.holders[txn] = want
		m.note(txn, resource, want)
		m.mu.Unlock()
		return nil
	}
	// A doomed upgrade fails now rather than timing out: if a queued
	// waiter also holds this resource (it is upgrading too), and the two
	// transactions' requests are mutually blocked by each other's held
	// locks, strict 2PL guarantees neither ever advances. The younger
	// request — this one — loses.
	if holding {
		for _, q := range ls.waiters {
			heldQ, owns := ls.holders[q.txn]
			if !owns || q.txn == txn {
				continue
			}
			wantQ := upgrade(heldQ, q.mode)
			if !compatible(want, heldQ) && !compatible(wantQ, cur) {
				m.mu.Unlock()
				return ErrUpgradeDeadlock
			}
		}
	}
	w := &waiter{txn: txn, mode: want, ch: make(chan struct{})}
	ls.waiters = append(ls.waiters, w)
	m.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		// Remove from the queue unless already granted in the race.
		select {
		case <-w.ch:
			m.mu.Unlock()
			return nil
		default:
		}
		for i, q := range ls.waiters {
			if q == w {
				ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
				break
			}
		}
		m.promote(resource, ls)
		m.mu.Unlock()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return ErrTimeout
		}
		return ctx.Err()
	}
}

// grantable reports whether txn can hold `mode` on ls given other
// holders; callers hold m.mu. A transaction's own existing lock never
// conflicts with its upgrade.
func (m *Manager) grantable(ls *lockState, txn TxnID, mode Mode) bool {
	for other, held := range ls.holders {
		if other == txn {
			continue
		}
		if !compatible(mode, held) {
			return false
		}
	}
	// FIFO fairness: a new request must also not jump over queued
	// waiters it conflicts with (upgrades may, to avoid self-deadlock).
	if _, upgrading := ls.holders[txn]; !upgrading {
		for _, w := range ls.waiters {
			if w.txn != txn && !compatible(mode, w.mode) {
				return false
			}
		}
	}
	return true
}

// note records a held lock for ReleaseAll; callers hold m.mu.
func (m *Manager) note(txn TxnID, resource string, mode Mode) {
	hm := m.held[txn]
	if hm == nil {
		hm = make(map[string]Mode)
		m.held[txn] = hm
	}
	hm[resource] = mode
}

// promote grants queued waiters in FIFO order; callers hold m.mu.
func (m *Manager) promote(resource string, ls *lockState) {
	for len(ls.waiters) > 0 {
		w := ls.waiters[0]
		// Compute the effective request (upgrade if already holding).
		want := w.mode
		if cur, ok := ls.holders[w.txn]; ok {
			want = upgrade(cur, w.mode)
		}
		granted := true
		for other, held := range ls.holders {
			if other != w.txn && !compatible(want, held) {
				granted = false
				break
			}
		}
		if !granted {
			return
		}
		ls.holders[w.txn] = want
		m.note(w.txn, resource, want)
		ls.waiters = ls.waiters[1:]
		close(w.ch)
	}
	if len(ls.holders) == 0 && len(ls.waiters) == 0 {
		delete(m.locks, resource)
	}
}

// ReleaseAll drops every lock held by txn (commit/abort in strict 2PL)
// and wakes eligible waiters.
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for resource := range m.held[txn] {
		ls := m.locks[resource]
		if ls == nil {
			continue
		}
		delete(ls.holders, txn)
		m.promote(resource, ls)
		if len(ls.holders) == 0 && len(ls.waiters) == 0 {
			delete(m.locks, resource)
		}
	}
	delete(m.held, txn)
}

// Holding returns the mode txn holds on resource (ok=false when none).
func (m *Manager) Holding(txn TxnID, resource string) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mode, ok := m.held[txn][resource]
	return mode, ok
}

// HeldCount returns how many resources txn currently locks.
func (m *Manager) HeldCount(txn TxnID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[txn])
}

// HeldLocks returns a snapshot of every lock txn holds, as
// resource→mode. Two-phase commit logs it in the prepare record so a
// recovered prepared branch can re-acquire exactly these locks.
func (m *Manager) HeldLocks(txn TxnID) map[string]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]Mode, len(m.held[txn]))
	for r, mode := range m.held[txn] {
		out[r] = mode
	}
	return out
}

// Regrant installs a lock without waiting, merging with any mode txn
// already holds. Recovery uses it to restore a prepared branch's locks
// before the database serves new transactions, so nothing can conflict;
// it must not be called on a contended live lock table.
func (m *Manager) Regrant(txn TxnID, resource string, mode Mode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls, ok := m.locks[resource]
	if !ok {
		ls = &lockState{holders: make(map[TxnID]Mode)}
		m.locks[resource] = ls
	}
	if cur, ok := ls.holders[txn]; ok {
		mode = upgrade(cur, mode)
	}
	ls.holders[txn] = mode
	m.note(txn, resource, mode)
}

package lockmgr

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestUpgradeDeadlockFailsFast: two S holders that both request X are
// mutually stuck forever under strict 2PL. The second requester must be
// refused immediately with ErrUpgradeDeadlock instead of burning its
// full lock-wait timeout — the regression this package's local detector
// exists for.
func TestUpgradeDeadlockFailsFast(t *testing.T) {
	m := New()
	if err := m.Acquire(bg(), 1, "r", S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(bg(), 2, "r", S); err != nil {
		t.Fatal(err)
	}

	// Txn 2's upgrade queues behind txn 1's S.
	enqueued := make(chan error, 1)
	go func() {
		enqueued <- m.Acquire(bg(), 2, "r", X)
	}()
	for i := 0; ; i++ {
		m.mu.Lock()
		n := len(m.locks["r"].waiters)
		m.mu.Unlock()
		if n == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("txn 2's upgrade never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Txn 1's upgrade would wait on txn 2's S while txn 2 waits on txn
	// 1's S: doomed, and detected without waiting.
	start := time.Now()
	ctx, cancel := context.WithTimeout(bg(), 10*time.Second)
	defer cancel()
	err := m.Acquire(ctx, 1, "r", X)
	if !errors.Is(err, ErrUpgradeDeadlock) {
		t.Fatalf("Acquire = %v, want ErrUpgradeDeadlock", err)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatal("ErrUpgradeDeadlock must carry presumed-deadlock (ErrTimeout) semantics")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("doomed upgrade took %v to fail; detection is not immediate", elapsed)
	}

	// The victim aborts (releases); the survivor's upgrade goes through.
	m.ReleaseAll(1)
	if err := <-enqueued; err != nil {
		t.Fatalf("survivor's upgrade = %v", err)
	}
	if mode, ok := m.Holding(2, "r"); !ok || mode != X {
		t.Fatalf("survivor holds %v/%v, want X", mode, ok)
	}
}

// TestUpgradeWaitNotMisflagged: an upgrade that merely has to wait —
// the queued holder's request is NOT blocked by ours — must wait, not
// be refused as a deadlock.
func TestUpgradeWaitNotMisflagged(t *testing.T) {
	m := New()
	if err := m.Acquire(bg(), 1, "r", S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(bg(), 2, "r", IS); err != nil {
		t.Fatal(err)
	}
	// Txn 2 queues an upgrade to S: blocked by nothing txn 1 would add
	// (S+S coexist), it just respects FIFO exclusion rules while a
	// stronger request exists. Force it into the queue via txn 3's X.
	blocked := make(chan error, 1)
	go func() { blocked <- m.Acquire(bg(), 3, "r", X) }()
	time.Sleep(5 * time.Millisecond)

	// Txn 1's upgrade to X waits on txn 2's IS, but txn 2's queued S is
	// compatible with txn 1's held S — one-directional, not doomed.
	ctx, cancel := context.WithTimeout(bg(), 30*time.Millisecond)
	defer cancel()
	err := m.Acquire(ctx, 1, "r", X)
	if err == nil {
		t.Fatal("upgrade granted over an incompatible holder")
	}
	if errors.Is(err, ErrUpgradeDeadlock) {
		t.Fatalf("one-directional wait misflagged as upgrade deadlock: %v", err)
	}

	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := <-blocked; err != nil {
		t.Fatalf("txn 3: %v", err)
	}
	m.ReleaseAll(3)
}

// TestRegrantRestoresLocks: recovery installs a prepared branch's
// logged locks without waiting; they exclude conflicting transactions
// exactly like normally acquired ones, and HeldLocks round-trips them.
func TestRegrantRestoresLocks(t *testing.T) {
	m := New()
	m.Regrant(7, "row/1", X)
	m.Regrant(7, "table", IX)
	m.Regrant(7, "row/1", S) // merge: X already subsumes S

	held := m.HeldLocks(7)
	if len(held) != 2 || held["row/1"] != X || held["table"] != IX {
		t.Fatalf("HeldLocks = %v", held)
	}

	ctx, cancel := context.WithTimeout(bg(), 20*time.Millisecond)
	defer cancel()
	if err := m.Acquire(ctx, 8, "row/1", S); !errors.Is(err, ErrTimeout) {
		t.Fatalf("conflicting acquire against regranted lock = %v, want ErrTimeout", err)
	}

	m.ReleaseAll(7)
	if err := m.Acquire(bg(), 8, "row/1", S); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

// refTable is the reference lock table the model test compares against:
// the textbook rule alone — a request is granted iff its upgrade-merged
// mode is compatible with every other holder.
type refTable struct {
	holders map[string]map[TxnID]Mode
}

func (r *refTable) grantable(txn TxnID, res string, mode Mode) (Mode, bool) {
	hs := r.holders[res]
	want := mode
	if cur, ok := hs[txn]; ok {
		want = upgrade(cur, mode)
	}
	for other, held := range hs {
		if other != txn && !compatible(want, held) {
			return want, false
		}
	}
	return want, true
}

func (r *refTable) grant(txn TxnID, res string, mode Mode) {
	hs := r.holders[res]
	if hs == nil {
		hs = make(map[TxnID]Mode)
		r.holders[res] = hs
	}
	hs[txn] = mode
}

func (r *refTable) releaseAll(txn TxnID) {
	for res, hs := range r.holders {
		delete(hs, txn)
		if len(hs) == 0 {
			delete(r.holders, res)
		}
	}
}

// TestRandomizedAgainstModel replays a seeded random schedule of
// acquires and releases sequentially (so the real manager never has
// queued waiters) and checks every outcome and every Holding/HeldCount
// observation against the reference table.
func TestRandomizedAgainstModel(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		ref := &refTable{holders: make(map[string]map[TxnID]Mode)}
		txns := []TxnID{1, 2, 3, 4}
		resources := []string{"t", "t/r1", "t/r2", "u"}
		modes := []Mode{IS, IX, S, X}

		for op := 0; op < 300; op++ {
			txn := txns[rng.Intn(len(txns))]
			if rng.Intn(10) == 0 {
				ref.releaseAll(txn)
				m.ReleaseAll(txn)
				continue
			}
			res := resources[rng.Intn(len(resources))]
			mode := modes[rng.Intn(len(modes))]
			want, ok := ref.grantable(txn, res, mode)
			// A short deadline turns "would wait" into ErrTimeout; with a
			// sequential schedule there are never queued waiters, so the
			// fast-path grant rule is exactly the reference rule.
			ctx, cancel := context.WithTimeout(bg(), 2*time.Millisecond)
			err := m.Acquire(ctx, txn, res, mode)
			cancel()
			if ok {
				if err != nil {
					t.Fatalf("seed %d op %d: Acquire(%d, %s, %v) = %v, model grants %v",
						seed, op, txn, res, mode, err, want)
				}
				ref.grant(txn, res, want)
			} else if !errors.Is(err, ErrTimeout) {
				t.Fatalf("seed %d op %d: Acquire(%d, %s, %v) = %v, model blocks",
					seed, op, txn, res, mode, err)
			}

			// Observations agree with the model after every step.
			for _, id := range txns {
				count := 0
				for res2, hs := range ref.holders {
					wantMode, held := hs[id]
					gotMode, gotHeld := m.Holding(id, res2)
					if held != gotHeld || (held && wantMode != gotMode) {
						t.Fatalf("seed %d op %d: Holding(%d, %s) = %v/%v, model %v/%v",
							seed, op, id, res2, gotMode, gotHeld, wantMode, held)
					}
					if held {
						count++
					}
				}
				if got := m.HeldCount(id); got != count {
					t.Fatalf("seed %d op %d: HeldCount(%d) = %d, model %d", seed, op, id, got, count)
				}
			}
		}
	}
}

package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func bg() context.Context { return context.Background() }

func TestCompatibilityMatrix(t *testing.T) {
	// The standard multi-granularity matrix.
	cases := []struct {
		a, b Mode
		comp bool
	}{
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, X, false},
		{IX, IS, true}, {IX, IX, true}, {IX, S, false}, {IX, X, false},
		{S, IS, true}, {S, IX, false}, {S, S, true}, {S, X, false},
		{X, IS, false}, {X, IX, false}, {X, S, false}, {X, X, false},
	}
	for _, c := range cases {
		if got := compatible(c.a, c.b); got != c.comp {
			t.Errorf("compatible(%v, %v) = %v, want %v", c.a, c.b, got, c.comp)
		}
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{IS: "IS", IX: "IX", S: "S", X: "X"} {
		if m.String() != want {
			t.Errorf("%v.String() = %q", m, m.String())
		}
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := New()
	if err := m.Acquire(bg(), 1, "r", S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(bg(), 2, "r", S); err != nil {
		t.Fatal(err)
	}
	if m.HeldCount(1) != 1 || m.HeldCount(2) != 1 {
		t.Error("held counts wrong")
	}
}

func TestExclusiveBlocksAndTimesOut(t *testing.T) {
	m := New()
	if err := m.Acquire(bg(), 1, "r", X); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg(), 20*time.Millisecond)
	defer cancel()
	err := m.Acquire(ctx, 2, "r", S)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestReleaseWakesWaiter(t *testing.T) {
	m := New()
	if err := m.Acquire(bg(), 1, "r", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- m.Acquire(bg(), 2, "r", X)
	}()
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken")
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := New()
	// Re-entrant acquire of same or weaker mode is a no-op.
	if err := m.Acquire(bg(), 1, "r", X); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(bg(), 1, "r", S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(bg(), 1, "r", X); err != nil {
		t.Fatal(err)
	}
	// S -> X upgrade succeeds when alone.
	if err := m.Acquire(bg(), 2, "r2", S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(bg(), 2, "r2", X); err != nil {
		t.Fatal(err)
	}
	if mode, ok := m.Holding(2, "r2"); !ok || mode != X {
		t.Errorf("after upgrade: %v %v", mode, ok)
	}
	// S -> X upgrade blocks while another reader holds S.
	m2 := New()
	if err := m2.Acquire(bg(), 1, "r", S); err != nil {
		t.Fatal(err)
	}
	if err := m2.Acquire(bg(), 2, "r", S); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg(), 20*time.Millisecond)
	defer cancel()
	if err := m2.Acquire(ctx, 1, "r", X); !errors.Is(err, ErrTimeout) {
		t.Fatalf("upgrade past reader: %v", err)
	}
}

func TestIntentionLocks(t *testing.T) {
	m := New()
	// IX + IX coexist (different rows).
	if err := m.Acquire(bg(), 1, "t", IX); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(bg(), 2, "t", IX); err != nil {
		t.Fatal(err)
	}
	// Table S conflicts with IX.
	ctx, cancel := context.WithTimeout(bg(), 20*time.Millisecond)
	defer cancel()
	if err := m.Acquire(ctx, 3, "t", S); !errors.Is(err, ErrTimeout) {
		t.Fatalf("S past IX: %v", err)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := m.Acquire(bg(), 3, "t", S); err != nil {
		t.Fatal(err)
	}
	// IS coexists with S.
	if err := m.Acquire(bg(), 4, "t", IS); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOFairness(t *testing.T) {
	// A waiting X must not be starved by a stream of later S requests.
	m := New()
	if err := m.Acquire(bg(), 1, "r", S); err != nil {
		t.Fatal(err)
	}
	xGranted := make(chan struct{})
	go func() {
		if err := m.Acquire(bg(), 2, "r", X); err == nil {
			close(xGranted)
		}
	}()
	time.Sleep(10 * time.Millisecond)

	// A later S request must queue behind the X.
	sGranted := make(chan struct{})
	go func() {
		if err := m.Acquire(bg(), 3, "r", S); err == nil {
			close(sGranted)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-sGranted:
		t.Fatal("S jumped the queue past a waiting X")
	default:
	}

	m.ReleaseAll(1)
	select {
	case <-xGranted:
	case <-time.After(time.Second):
		t.Fatal("X never granted")
	}
	m.ReleaseAll(2)
	select {
	case <-sGranted:
	case <-time.After(time.Second):
		t.Fatal("S never granted")
	}
}

func TestCancelledWaiterRemoved(t *testing.T) {
	m := New()
	if err := m.Acquire(bg(), 1, "r", X); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg())
	done := make(chan error, 1)
	go func() { done <- m.Acquire(ctx, 2, "r", X) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	// The queue must not be wedged: a third txn gets the lock after
	// release.
	m.ReleaseAll(1)
	if err := m.Acquire(bg(), 3, "r", X); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAllIdempotent(t *testing.T) {
	m := New()
	if err := m.Acquire(bg(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(bg(), 1, "b", S); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(1) // no panic, no effect
	if m.HeldCount(1) != 0 {
		t.Error("locks survive ReleaseAll")
	}
}

func TestConcurrentStress(t *testing.T) {
	// Many goroutines lock random resources in X; the counter protected
	// by each resource must never be written concurrently.
	m := New()
	const resources = 8
	const workers = 16
	counters := make([]int64, resources)
	inCrit := make([]atomic.Int32, resources)

	var wg sync.WaitGroup
	var txnID atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := TxnID(txnID.Add(1))
				r := (w + i) % resources
				res := fmt.Sprintf("res%d", r)
				if err := m.Acquire(bg(), id, res, X); err != nil {
					t.Error(err)
					return
				}
				if inCrit[r].Add(1) != 1 {
					t.Errorf("mutual exclusion violated on %s", res)
				}
				counters[r]++
				inCrit[r].Add(-1)
				m.ReleaseAll(id)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, c := range counters {
		total += c
	}
	if total != workers*200 {
		t.Errorf("lost updates: %d", total)
	}
}

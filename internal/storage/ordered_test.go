package storage

import (
	"math/rand"
	"sort"
	"testing"

	"myriad/internal/schema"
	"myriad/internal/value"
)

// one wraps a single value as an index key tuple.
func one(v value.Value) []value.Value { return []value.Value{v} }

// collect drains a cursor into a RowID slice.
func collect(c *OrderedCursor) []RowID {
	var out []RowID
	for {
		id, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, id)
	}
}

func idsEqual(t *testing.T, got, want []RowID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d ids, want %d\ngot  %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("id %d: got %d, want %d\ngot  %v\nwant %v", i, got[i], want[i], got, want)
		}
	}
}

// refSort orders (tuple, id) pairs the way the index must: CompareSort
// column by column, then ascending id.
func refSort(pairs []oentry) {
	sort.SliceStable(pairs, func(a, b int) bool { return compareEntry(pairs[a], pairs[b]) < 0 })
}

// refDesc derives the descending walk from an ascending reference:
// tuples reverse, ids ascend within each equal-tuple group — exactly a
// stable descending sort of arrival order.
func refDesc(ref []oentry) []RowID {
	var want []RowID
	for i := len(ref) - 1; i >= 0; {
		j := i
		for j >= 0 && compareTuples(ref[j].vs, ref[i].vs) == 0 {
			j--
		}
		for k := j + 1; k <= i; k++ {
			want = append(want, ref[k].id)
		}
		i = j
	}
	return want
}

func TestOrderedIndexFullWalkMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := NewOrderedIndex(1)
	var ref []oentry
	for i := 0; i < 5000; i++ {
		v := value.NewInt(int64(rng.Intn(300))) // heavy duplicates
		ix.add(one(v), RowID(i))
		ref = append(ref, oentry{vs: one(v), id: RowID(i)})
	}
	if ix.Len() != 5000 {
		t.Fatalf("Len = %d", ix.Len())
	}
	refSort(ref)
	want := make([]RowID, len(ref))
	for i, e := range ref {
		want[i] = e.id
	}
	idsEqual(t, collect(ix.Cursor(Bound{}, Bound{}, false)), want)
	idsEqual(t, collect(ix.Cursor(Bound{}, Bound{}, true)), refDesc(ref))
}

func TestOrderedIndexRangeBounds(t *testing.T) {
	ix := NewOrderedIndex(1)
	// ids 0..99 with value id/10: ten of each value 0..9.
	for i := 0; i < 100; i++ {
		ix.add(one(value.NewInt(int64(i/10))), RowID(i))
	}
	ids := func(lo, hi Bound, desc bool) []RowID { return collect(ix.Cursor(lo, hi, desc)) }

	got := ids(BoundAt(value.NewInt(3), true), BoundAt(value.NewInt(5), false), false)
	var want []RowID
	for i := 30; i < 50; i++ {
		want = append(want, RowID(i))
	}
	idsEqual(t, got, want)

	got = ids(BoundAt(value.NewInt(3), false), BoundAt(value.NewInt(5), true), false)
	want = want[:0]
	for i := 40; i < 60; i++ {
		want = append(want, RowID(i))
	}
	idsEqual(t, got, want)

	// Equality range [7, 7].
	got = ids(BoundAt(value.NewInt(7), true), BoundAt(value.NewInt(7), true), false)
	want = want[:0]
	for i := 70; i < 80; i++ {
		want = append(want, RowID(i))
	}
	idsEqual(t, got, want)

	// Empty ranges.
	if got := ids(BoundAt(value.NewInt(42), true), BoundAt(value.NewInt(99), true), false); len(got) != 0 {
		t.Fatalf("out-of-domain range returned %v", got)
	}
	if got := ids(BoundAt(value.NewInt(5), false), BoundAt(value.NewInt(5), false), false); len(got) != 0 {
		t.Fatalf("exclusive-empty range returned %v", got)
	}

	// Descending over [3, 5]: values 5,4,3, ids ascending within each.
	got = ids(BoundAt(value.NewInt(3), true), BoundAt(value.NewInt(5), true), true)
	want = want[:0]
	for _, base := range []int{50, 40, 30} {
		for i := base; i < base+10; i++ {
			want = append(want, RowID(i))
		}
	}
	idsEqual(t, got, want)
}

func TestOrderedIndexNullBounds(t *testing.T) {
	ix := NewOrderedIndex(1)
	// NULLs at ids 0..4, then values 1..5 at ids 5..9.
	for i := 0; i < 5; i++ {
		ix.add(one(value.Null()), RowID(i))
	}
	for i := 0; i < 5; i++ {
		ix.add(one(value.NewInt(int64(i+1))), RowID(5+i))
	}

	// NULLs sort first: a full ascending walk leads with them.
	idsEqual(t, collect(ix.Cursor(Bound{}, Bound{}, false)),
		[]RowID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})

	// An exclusive NULL lower bound skips exactly the NULL entries —
	// how a predicate-driven scan excludes NULLs under an upper bound.
	got := collect(ix.Cursor(BoundAt(value.Null(), false), BoundAt(value.NewInt(3), true), false))
	idsEqual(t, got, []RowID{5, 6, 7})

	// An inclusive NULL upper bound selects only the NULL group.
	got = collect(ix.Cursor(Bound{}, BoundAt(value.Null(), true), false))
	idsEqual(t, got, []RowID{0, 1, 2, 3, 4})

	// Descending full walk: NULLs come last, still in arrival order.
	got = collect(ix.Cursor(Bound{}, Bound{}, true))
	idsEqual(t, got, []RowID{9, 8, 7, 6, 5, 0, 1, 2, 3, 4})
}

func TestOrderedIndexDeleteAndReinsert(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ix := NewOrderedIndex(1)
	live := map[RowID]value.Value{}
	next := RowID(0)
	for step := 0; step < 20000; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			// Delete a random live entry.
			for id, v := range live {
				ix.remove(one(v), id)
				delete(live, id)
				break
			}
			continue
		}
		v := value.NewInt(int64(rng.Intn(50)))
		ix.add(one(v), next)
		live[next] = v
		next++
	}
	if ix.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(live))
	}
	var ref []oentry
	for id, v := range live {
		ref = append(ref, oentry{vs: one(v), id: id})
	}
	refSort(ref)
	want := make([]RowID, len(ref))
	for i, e := range ref {
		want[i] = e.id
	}
	idsEqual(t, collect(ix.Cursor(Bound{}, Bound{}, false)), want)

	// Drain completely and rebuild.
	for id, v := range live {
		ix.remove(one(v), id)
	}
	if ix.Len() != 0 {
		t.Fatalf("Len after drain = %d", ix.Len())
	}
	if got := collect(ix.Cursor(Bound{}, Bound{}, false)); len(got) != 0 {
		t.Fatalf("drained index yielded %v", got)
	}
	ix.add(one(value.NewInt(1)), 1)
	idsEqual(t, collect(ix.Cursor(Bound{}, Bound{}, false)), []RowID{1})
}

// pair builds a two-column key tuple.
func pair(a, b value.Value) []value.Value { return []value.Value{a, b} }

func TestCompositeIndexFullWalkMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := NewOrderedIndex(2)
	var ref []oentry
	for i := 0; i < 5000; i++ {
		// Heavy duplicates in both columns, NULLs sprinkled into each.
		a, b := value.NewInt(int64(rng.Intn(20))), value.NewInt(int64(rng.Intn(10)))
		if rng.Intn(10) == 0 {
			a = value.Null()
		}
		if rng.Intn(10) == 0 {
			b = value.Null()
		}
		ix.add(pair(a, b), RowID(i))
		ref = append(ref, oentry{vs: pair(a, b), id: RowID(i)})
	}
	refSort(ref)
	want := make([]RowID, len(ref))
	for i, e := range ref {
		want[i] = e.id
	}
	idsEqual(t, collect(ix.CursorTuple(TupleBound{}, TupleBound{}, false)), want)
	idsEqual(t, collect(ix.CursorTuple(TupleBound{}, TupleBound{}, true)), refDesc(ref))
}

func TestCompositeIndexPrefixBounds(t *testing.T) {
	ix := NewOrderedIndex(2)
	// ids 0..99 keyed (id/10, id%10): a in 0..9, b in 0..9, ordered
	// exactly by id.
	for i := 0; i < 100; i++ {
		ix.add(pair(value.NewInt(int64(i/10)), value.NewInt(int64(i%10))), RowID(i))
	}
	ids := func(lo, hi TupleBound, desc bool) []RowID { return collect(ix.CursorTuple(lo, hi, desc)) }
	span := func(from, to int) []RowID {
		var w []RowID
		for i := from; i < to; i++ {
			w = append(w, RowID(i))
		}
		return w
	}

	// Prefix bounds address whole leading-column groups.
	idsEqual(t, ids(TupleBoundAt(one(value.NewInt(3)), true), TupleBoundAt(one(value.NewInt(5)), false), false), span(30, 50))
	idsEqual(t, ids(TupleBoundAt(one(value.NewInt(3)), false), TupleBoundAt(one(value.NewInt(5)), true), false), span(40, 60))
	// Prefix equality [7, 7] inclusive selects the full a=7 group.
	idsEqual(t, ids(TupleBoundAt(one(value.NewInt(7)), true), TupleBoundAt(one(value.NewInt(7)), true), false), span(70, 80))

	// Full-tuple bounds: a=4 AND b in [2, 6).
	idsEqual(t,
		ids(TupleBoundAt(pair(value.NewInt(4), value.NewInt(2)), true),
			TupleBoundAt(pair(value.NewInt(4), value.NewInt(6)), false), false),
		span(42, 46))
	// Mixed widths: from (4, 7) inclusive through the whole a=5 group.
	idsEqual(t,
		ids(TupleBoundAt(pair(value.NewInt(4), value.NewInt(7)), true),
			TupleBoundAt(one(value.NewInt(5)), true), false),
		span(47, 60))

	// Descending prefix range [3, 5]: a groups 5,4,3, ids ascending
	// within each equal (a, b) tuple — here tuples are unique, so ids
	// descend across the span.
	got := ids(TupleBoundAt(one(value.NewInt(3)), true), TupleBoundAt(one(value.NewInt(5)), true), true)
	var want []RowID
	for i := 59; i >= 30; i-- {
		want = append(want, RowID(i))
	}
	idsEqual(t, got, want)

	// Empty prefix range.
	if got := ids(TupleBoundAt(one(value.NewInt(5)), false), TupleBoundAt(one(value.NewInt(5)), false), false); len(got) != 0 {
		t.Fatalf("exclusive-empty prefix range returned %v", got)
	}
}

// TestCompositeIndexChurn mirrors the single-column delete/reinsert
// suite: random insert/delete churn against a reference model, with
// range probes at random prefix and full-tuple bounds.
func TestCompositeIndexChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ix := NewOrderedIndex(2)
	live := map[RowID][]value.Value{}
	next := RowID(0)
	check := func() {
		var ref []oentry
		for id, vs := range live {
			ref = append(ref, oentry{vs: vs, id: id})
		}
		refSort(ref)
		want := make([]RowID, len(ref))
		for i, e := range ref {
			want[i] = e.id
		}
		idsEqual(t, collect(ix.CursorTuple(TupleBound{}, TupleBound{}, false)), want)
		idsEqual(t, collect(ix.CursorTuple(TupleBound{}, TupleBound{}, true)), refDesc(ref))

		// A random prefix range probe, both directions.
		lo, hi := int64(rng.Intn(8)), int64(rng.Intn(8))
		if lo > hi {
			lo, hi = hi, lo
		}
		var inRange []oentry
		for _, e := range ref {
			if !e.vs[0].IsNull() && e.vs[0].I >= lo && e.vs[0].I <= hi {
				inRange = append(inRange, e)
			}
		}
		want = want[:0]
		for _, e := range inRange {
			want = append(want, e.id)
		}
		tlo := TupleBoundAt(one(value.NewInt(lo)), true)
		thi := TupleBoundAt(one(value.NewInt(hi)), true)
		idsEqual(t, collect(ix.CursorTuple(tlo, thi, false)), want)
		idsEqual(t, collect(ix.CursorTuple(tlo, thi, true)), refDesc(inRange))
	}
	for step := 0; step < 20000; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			for id, vs := range live {
				ix.remove(vs, id)
				delete(live, id)
				break
			}
		} else {
			vs := pair(value.NewInt(int64(rng.Intn(8))), value.NewInt(int64(rng.Intn(4))))
			if rng.Intn(12) == 0 {
				vs[1] = value.Null()
			}
			ix.add(vs, next)
			live[next] = vs
			next++
		}
		if step%4000 == 3999 {
			check()
		}
	}
	if ix.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(live))
	}
	check()
}

func TestTableMaintainsOrderedIndex(t *testing.T) {
	sc := &schema.Schema{
		Table: "t",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "v", Type: schema.TInt},
		},
		Key: []string{"id"},
	}
	tbl, err := NewTable(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := tbl.Insert(schema.Row{value.NewInt(int64(i)), value.NewInt(int64(99 - i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateOrderedIndex("v"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateOrderedIndex("v"); err == nil {
		t.Fatal("duplicate ordered index allowed")
	}
	ix, ok := tbl.OrderedIndex("V") // case-insensitive
	if !ok {
		t.Fatal("ordered index not found")
	}
	if ix.Len() != 100 {
		t.Fatalf("index Len = %d", ix.Len())
	}

	// v ascending = id descending by construction.
	ids := collect(ix.Cursor(Bound{}, Bound{}, false))
	for i, id := range ids {
		if int(id) != 99-i {
			t.Fatalf("pos %d: id %d", i, id)
		}
	}

	// Delete, update, and undo-reinsert all keep the index in step.
	if _, err := tbl.Delete(RowID(99)); err != nil { // v=0
		t.Fatal(err)
	}
	if _, err := tbl.Update(RowID(0), schema.Row{value.NewInt(0), value.NewInt(1000)}); err != nil { // v 99 -> 1000
		t.Fatal(err)
	}
	if err := tbl.InsertAt(RowID(99), schema.Row{value.NewInt(99), value.NewInt(-5)}); err != nil {
		t.Fatal(err)
	}
	ids = collect(ix.Cursor(Bound{}, Bound{}, false))
	if len(ids) != 100 {
		t.Fatalf("index has %d entries", len(ids))
	}
	if ids[0] != 99 { // v=-5 sorts first
		t.Fatalf("first id %d", ids[0])
	}
	if ids[len(ids)-1] != 0 { // v=1000 sorts last
		t.Fatalf("last id %d", ids[len(ids)-1])
	}
	if got := tbl.OrderedIndexColumns(); len(got) != 1 || got[0] != "v" {
		t.Fatalf("OrderedIndexColumns = %v", got)
	}
}

func TestTableMaintainsCompositeOrderedIndex(t *testing.T) {
	sc := &schema.Schema{
		Table: "t",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "a", Type: schema.TInt},
			{Name: "b", Type: schema.TInt},
		},
		Key: []string{"id"},
	}
	tbl, err := NewTable(sc)
	if err != nil {
		t.Fatal(err)
	}
	// (a, b) = (id%5, id%3): duplicates in both columns.
	for i := 0; i < 60; i++ {
		r := schema.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 5)), value.NewInt(int64(i % 3))}
		if _, err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateOrderedIndex("a", "B"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateOrderedIndex("A", "b"); err == nil {
		t.Fatal("duplicate composite index allowed")
	}
	// (b, a) is a different index than (a, b); a alone too.
	if err := tbl.CreateOrderedIndex("b", "a"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateOrderedIndex("a"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateOrderedIndex("a", "a"); err == nil {
		t.Fatal("repeated column allowed in one index")
	}

	infos := tbl.OrderedIndexes()
	if len(infos) != 3 {
		t.Fatalf("OrderedIndexes returned %d entries", len(infos))
	}
	wantCols := [][]string{{"a"}, {"a", "b"}, {"b", "a"}}
	for i, want := range wantCols {
		got := infos[i].Columns
		if len(got) != len(want) {
			t.Fatalf("index %d columns = %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("index %d columns = %v, want %v", i, got, want)
			}
		}
	}
	// Composite indexes stay out of the single-column listing.
	if got := tbl.OrderedIndexColumns(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("OrderedIndexColumns = %v", got)
	}

	var ab *OrderedIndex
	for _, info := range infos {
		if len(info.Columns) == 2 && info.Columns[0] == "a" {
			ab = info.Index
		}
	}
	verify := func() {
		t.Helper()
		var ref []oentry
		tbl.Scan(func(id RowID, r schema.Row) bool {
			ref = append(ref, oentry{vs: pair(r[1], r[2]), id: id})
			return true
		})
		refSort(ref)
		want := make([]RowID, len(ref))
		for i, e := range ref {
			want[i] = e.id
		}
		idsEqual(t, collect(ab.CursorTuple(TupleBound{}, TupleBound{}, false)), want)
	}
	verify()

	// Update that changes only b must re-index; one that changes
	// neither key column must not disturb the walk.
	if _, err := tbl.Update(RowID(7), schema.Row{value.NewInt(7), value.NewInt(7 % 5), value.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Delete(RowID(30)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertAt(RowID(30), schema.Row{value.NewInt(30), value.NewInt(4), value.Null()}); err != nil {
		t.Fatal(err)
	}
	verify()
}

func TestCachedStatsStaleness(t *testing.T) {
	sc := &schema.Schema{
		Table:   "t",
		Columns: []schema.Column{{Name: "v", Type: schema.TInt}},
	}
	tbl, err := NewTable(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := tbl.Insert(schema.Row{value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	s1 := tbl.CachedStats()
	if s1.Rows != 10 {
		t.Fatalf("Rows = %d", s1.Rows)
	}
	// A few mutations stay inside the staleness allowance.
	for i := 10; i < 20; i++ {
		if _, err := tbl.Insert(schema.Row{value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if s2 := tbl.CachedStats(); s2 != s1 {
		t.Fatal("stats recomputed inside the staleness allowance")
	}
	// Blowing past the allowance recomputes.
	for i := 20; i < 20+statsStaleRows+1; i++ {
		if _, err := tbl.Insert(schema.Row{value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if s3 := tbl.CachedStats(); s3 == s1 || s3.Rows != int64(20+statsStaleRows+1) {
		t.Fatalf("stats not refreshed: %+v", s3)
	}
}

func TestFractionEstimates(t *testing.T) {
	cs := ColumnStats{
		Name:     "v",
		Distinct: 100,
		Nulls:    0,
		Min:      value.NewInt(0),
		Max:      value.NewInt(999),
	}
	if f := cs.EqFraction(1000); f < 0.009 || f > 0.011 {
		t.Fatalf("EqFraction = %v", f)
	}
	f := cs.RangeFraction(BoundAt(value.NewInt(0), true), BoundAt(value.NewInt(9), false), 1000)
	if f < 0.005 || f > 0.02 {
		t.Fatalf("1%% RangeFraction = %v", f)
	}
	f = cs.RangeFraction(BoundAt(value.NewInt(500), true), Bound{}, 1000)
	if f < 0.45 || f > 0.55 {
		t.Fatalf("half RangeFraction = %v", f)
	}
	// Text columns degrade to the 1/3 rule.
	tcs := ColumnStats{Name: "s", Distinct: 10, Min: value.NewText("a"), Max: value.NewText("z")}
	if f := tcs.RangeFraction(BoundAt(value.NewText("m"), true), Bound{}, 1000); f < 0.3 || f > 0.4 {
		t.Fatalf("text RangeFraction = %v", f)
	}
	// NULL-heavy columns scale by the non-NULL fraction.
	ncs := ColumnStats{Name: "n", Distinct: 10, Nulls: 900, Min: value.NewInt(0), Max: value.NewInt(9)}
	if f := ncs.RangeFraction(BoundAt(value.NewInt(0), true), Bound{}, 1000); f > 0.11 {
		t.Fatalf("null-heavy RangeFraction = %v", f)
	}
}

package storage

import (
	"myriad/internal/schema"
	"myriad/internal/value"
)

// ColumnStats summarizes one column for the optimizer's cost model.
type ColumnStats struct {
	Name     string
	Distinct int64
	Nulls    int64
	Min, Max value.Value // NULL when the column is empty or non-comparable
}

// TableStats summarizes a table.
type TableStats struct {
	Table   string
	Rows    int64
	Columns []ColumnStats
}

// Stats computes fresh statistics with one scan. MYRIAD gateways call
// this on demand and the federation caches the result; the component
// databases in the paper exposed equivalent catalog views.
func (t *Table) Stats() TableStats {
	ts := TableStats{Table: t.Schema.Table, Rows: int64(t.Len())}
	n := len(t.Schema.Columns)
	distinct := make([]map[uint64]bool, n)
	for i := range distinct {
		distinct[i] = make(map[uint64]bool)
	}
	nulls := make([]int64, n)
	mins := make([]value.Value, n)
	maxs := make([]value.Value, n)
	t.Scan(func(_ RowID, r schema.Row) bool {
		for i, v := range r {
			if v.IsNull() {
				nulls[i]++
				continue
			}
			distinct[i][v.Hash()] = true
			if mins[i].IsNull() {
				mins[i], maxs[i] = v, v
				continue
			}
			if c, ok := value.Compare(v, mins[i]); ok && c < 0 {
				mins[i] = v
			}
			if c, ok := value.Compare(v, maxs[i]); ok && c > 0 {
				maxs[i] = v
			}
		}
		return true
	})
	for i, col := range t.Schema.Columns {
		ts.Columns = append(ts.Columns, ColumnStats{
			Name:     col.Name,
			Distinct: int64(len(distinct[i])),
			Nulls:    nulls[i],
			Min:      mins[i],
			Max:      maxs[i],
		})
	}
	return ts
}

// statsStaleRows is the minimum mutation count between automatic stats
// recomputations; larger tables additionally tolerate staleness
// proportional to their size (an eighth of the rows), so the amortized
// cost of keeping stats fresh is a small constant per mutation.
const statsStaleRows = 256

// CachedStats returns statistics that are at most mildly stale: the
// cached snapshot is reused until the table has seen max(256, rows/8)
// mutations since it was computed, then recomputed with one scan. The
// access-path planner consults this on every query, so it must not pay
// a full scan per query; the tolerated staleness shifts estimates by at
// most ~12.5%, well inside the cost model's noise. Callers must hold
// the database latch (any mode) for the duration, like Stats.
func (t *Table) CachedStats() *TableStats {
	muts := t.muts.Load()
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.stats != nil {
		stale := muts - t.statsAt
		allow := int64(statsStaleRows)
		if byRows := t.stats.Rows / 8; byRows > allow {
			allow = byRows
		}
		if stale <= allow {
			return t.stats
		}
	}
	ts := t.Stats()
	t.stats = &ts
	t.statsAt = muts
	return t.stats
}

// EqFraction estimates the fraction of the table's rows whose column
// equals some single non-NULL value: the uniform-distribution 1/distinct
// rule over live statistics, floored so a zero never reaches the cost
// model.
func (cs *ColumnStats) EqFraction(rows int64) float64 {
	if rows <= 0 {
		return 0
	}
	if cs.Distinct > 0 {
		f := float64(rows-cs.Nulls) / float64(rows) / float64(cs.Distinct)
		if f > 1 {
			return 1
		}
		return f
	}
	return 0.1
}

// RangeFraction estimates the fraction of rows falling inside the bound
// pair by linear interpolation over [Min, Max] for numeric columns (the
// System-R rule the federation planner also applies), scaled by the
// column's non-NULL fraction — range predicates never match NULL. A
// non-numeric or empty column degrades to the classic 1/3 per bounded
// side.
func (cs *ColumnStats) RangeFraction(lo, hi Bound, rows int64) float64 {
	if rows <= 0 {
		return 0
	}
	notNull := float64(rows-cs.Nulls) / float64(rows)
	mn, ok1 := cs.Min.Float()
	mx, ok2 := cs.Max.Float()
	numericCol := ok1 && ok2 && !cs.Min.IsNull() && !cs.Max.IsNull()
	frac := 1.0
	interpolated := false
	if numericCol && mx > mn {
		loF, hiF := 0.0, 1.0
		if lo.Set {
			if v, ok := lo.V.Float(); ok {
				loF = clamp01((v - mn) / (mx - mn))
				interpolated = true
			}
		}
		if hi.Set {
			if v, ok := hi.V.Float(); ok {
				hiF = clamp01((v - mn) / (mx - mn))
				interpolated = true
			}
		}
		if interpolated {
			frac = hiF - loF
			if frac < 0 {
				frac = 0
			}
			// An equality-tight range still matches ~one value.
			if frac == 0 && lo.Set && hi.Set && cs.Distinct > 0 {
				frac = 1 / float64(cs.Distinct)
			}
		}
	}
	if !interpolated {
		frac = 1.0
		if lo.Set {
			frac /= 3
		}
		if hi.Set {
			frac /= 3
		}
	}
	return clamp01(frac) * notNull
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Col returns the stats for the named column, if present.
func (ts *TableStats) Col(name string) (ColumnStats, bool) {
	for _, c := range ts.Columns {
		if equalFold(c.Name, name) {
			return c, true
		}
	}
	return ColumnStats{}, false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

package storage

import (
	"myriad/internal/schema"
	"myriad/internal/value"
)

// ColumnStats summarizes one column for the optimizer's cost model.
type ColumnStats struct {
	Name     string
	Distinct int64
	Nulls    int64
	Min, Max value.Value // NULL when the column is empty or non-comparable
}

// TableStats summarizes a table.
type TableStats struct {
	Table   string
	Rows    int64
	Columns []ColumnStats
}

// Stats computes fresh statistics with one scan. MYRIAD gateways call
// this on demand and the federation caches the result; the component
// databases in the paper exposed equivalent catalog views.
func (t *Table) Stats() TableStats {
	ts := TableStats{Table: t.Schema.Table, Rows: int64(t.Len())}
	n := len(t.Schema.Columns)
	distinct := make([]map[uint64]bool, n)
	for i := range distinct {
		distinct[i] = make(map[uint64]bool)
	}
	nulls := make([]int64, n)
	mins := make([]value.Value, n)
	maxs := make([]value.Value, n)
	t.Scan(func(_ RowID, r schema.Row) bool {
		for i, v := range r {
			if v.IsNull() {
				nulls[i]++
				continue
			}
			distinct[i][v.Hash()] = true
			if mins[i].IsNull() {
				mins[i], maxs[i] = v, v
				continue
			}
			if c, ok := value.Compare(v, mins[i]); ok && c < 0 {
				mins[i] = v
			}
			if c, ok := value.Compare(v, maxs[i]); ok && c > 0 {
				maxs[i] = v
			}
		}
		return true
	})
	for i, col := range t.Schema.Columns {
		ts.Columns = append(ts.Columns, ColumnStats{
			Name:     col.Name,
			Distinct: int64(len(distinct[i])),
			Nulls:    nulls[i],
			Min:      mins[i],
			Max:      maxs[i],
		})
	}
	return ts
}

// Col returns the stats for the named column, if present.
func (ts *TableStats) Col(name string) (ColumnStats, bool) {
	for _, c := range ts.Columns {
		if equalFold(c.Name, name) {
			return c, true
		}
	}
	return ColumnStats{}, false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"myriad/internal/schema"
	"myriad/internal/value"
)

func newTestTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable(&schema.Schema{
		Table: "acct",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt, NotNull: true},
			{Name: "owner", Type: schema.TText},
			{Name: "bal", Type: schema.TInt},
		},
		Key: []string{"id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func row(id int64, owner string, bal int64) schema.Row {
	return schema.Row{value.NewInt(id), value.NewText(owner), value.NewInt(bal)}
}

func TestInsertGetDelete(t *testing.T) {
	tbl := newTestTable(t)
	id1, err := tbl.Insert(row(1, "ann", 100))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	got := tbl.Get(id1)
	if got == nil || got[1].Text() != "ann" {
		t.Errorf("Get: %v", got)
	}

	// Duplicate PK rejected.
	if _, err := tbl.Insert(row(1, "dup", 0)); err == nil {
		t.Error("duplicate PK accepted")
	}

	// PK lookup.
	rid, r, ok := tbl.GetByKey([]value.Value{value.NewInt(1)})
	if !ok || rid != id1 || r[1].Text() != "ann" {
		t.Errorf("GetByKey: %v %v %v", rid, r, ok)
	}
	if _, _, ok := tbl.GetByKey([]value.Value{value.NewInt(99)}); ok {
		t.Error("GetByKey on absent key succeeded")
	}

	old, err := tbl.Delete(id1)
	if err != nil || old[1].Text() != "ann" {
		t.Fatalf("Delete: %v %v", old, err)
	}
	if tbl.Len() != 0 || tbl.Get(id1) != nil {
		t.Error("row survives delete")
	}
	if _, err := tbl.Delete(id1); err == nil {
		t.Error("double delete accepted")
	}
	// Key is free again.
	if _, err := tbl.Insert(row(1, "again", 5)); err != nil {
		t.Errorf("reinsert after delete: %v", err)
	}
}

func TestInsertAtUndo(t *testing.T) {
	tbl := newTestTable(t)
	id, _ := tbl.Insert(row(1, "a", 1))
	old, _ := tbl.Delete(id)
	if err := tbl.InsertAt(id, old); err != nil {
		t.Fatalf("InsertAt: %v", err)
	}
	if tbl.Len() != 1 {
		t.Error("undo re-insert lost row")
	}
	if err := tbl.InsertAt(id, old); err == nil {
		t.Error("InsertAt into occupied slot accepted")
	}
}

func TestUpdate(t *testing.T) {
	tbl := newTestTable(t)
	id, _ := tbl.Insert(row(1, "a", 1))
	old, err := tbl.Update(id, row(1, "a", 42))
	if err != nil {
		t.Fatal(err)
	}
	if old[2].I != 1 || tbl.Get(id)[2].I != 42 {
		t.Error("update old/new images wrong")
	}

	// PK change is re-indexed.
	if _, err := tbl.Update(id, row(7, "a", 42)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tbl.GetByKey([]value.Value{value.NewInt(1)}); ok {
		t.Error("old key still indexed")
	}
	if _, _, ok := tbl.GetByKey([]value.Value{value.NewInt(7)}); !ok {
		t.Error("new key not indexed")
	}

	// PK conflict on update.
	tbl.Insert(row(1, "b", 2)) //nolint:errcheck
	if _, err := tbl.Update(id, row(1, "x", 0)); err == nil {
		t.Error("PK conflict on update accepted")
	}
}

func TestCoercionOnInsert(t *testing.T) {
	tbl := newTestTable(t)
	id, err := tbl.Insert(schema.Row{value.NewText("3"), value.NewText("t"), value.NewFloat(9.9)})
	if err != nil {
		t.Fatal(err)
	}
	r := tbl.Get(id)
	if r[0].K != value.KindInt || r[0].I != 3 {
		t.Errorf("id not coerced: %v", r[0])
	}
	if r[2].K != value.KindInt || r[2].I != 9 {
		t.Errorf("bal not coerced: %v", r[2])
	}
	// NULL key rejected.
	if _, err := tbl.Insert(schema.Row{value.Null(), value.NewText("x"), value.Null()}); err == nil {
		t.Error("NULL PK accepted")
	}
}

func TestScanStopsEarly(t *testing.T) {
	tbl := newTestTable(t)
	for i := 0; i < 10; i++ {
		tbl.Insert(row(int64(i), "x", 0)) //nolint:errcheck
	}
	var n int
	tbl.Scan(func(RowID, schema.Row) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("scan visited %d, want 3", n)
	}
}

func TestScanFromResumes(t *testing.T) {
	tbl := newTestTable(t)
	for i := 0; i < 10; i++ {
		tbl.Insert(row(int64(i), "x", 0)) //nolint:errcheck
	}
	tbl.Delete(4) //nolint:errcheck
	// Resuming from the slot after the last visited row sees each live
	// row exactly once, skipping tombstones (the streaming scan
	// iterator's contract).
	var ids []int64
	next := RowID(0)
	for {
		visited := 0
		before := len(ids)
		tbl.ScanFrom(next, func(id RowID, r schema.Row) bool {
			v, _ := r[0].Int()
			ids = append(ids, v)
			next = id + 1
			visited++
			return visited < 3 // batch size 3
		})
		if len(ids) == before {
			break
		}
	}
	want := []int64{0, 1, 2, 3, 5, 6, 7, 8, 9}
	if len(ids) != len(want) {
		t.Fatalf("resumed scan saw %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("resumed scan saw %v, want %v", ids, want)
		}
	}
	// Negative start clamps to the beginning.
	n := 0
	tbl.ScanFrom(-5, func(RowID, schema.Row) bool { n++; return true })
	if n != 9 {
		t.Errorf("ScanFrom(-5) visited %d, want 9", n)
	}
}

func TestSecondaryIndex(t *testing.T) {
	tbl := newTestTable(t)
	for i := 0; i < 10; i++ {
		tbl.Insert(row(int64(i), fmt.Sprintf("owner%d", i%3), int64(i))) //nolint:errcheck
	}
	if err := tbl.CreateIndex("owner"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("owner"); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := tbl.CreateIndex("ghost"); err == nil {
		t.Error("index on missing column accepted")
	}
	ix, ok := tbl.Index("OWNER")
	if !ok {
		t.Fatal("index not found (case-insensitive)")
	}
	ids := ix.Lookup(value.NewText("owner1"))
	if len(ids) != 4 { // ids 1,4,7 → wait: i%3==1 for 1,4,7 → 3 rows... 10 rows: 1,4,7 = 3
		// recompute: i in 0..9, i%3==1 → 1,4,7 → 3 rows
		if len(ids) != 3 {
			t.Errorf("index lookup: %d ids", len(ids))
		}
	}

	// Index maintenance on update and delete.
	rid := ids[0]
	tbl.Update(rid, row(100, "ownerX", 0)) //nolint:errcheck
	if got := len(ix.Lookup(value.NewText("ownerX"))); got != 1 {
		t.Errorf("index after update: %d", got)
	}
	tbl.Delete(rid) //nolint:errcheck
	if got := len(ix.Lookup(value.NewText("ownerX"))); got != 0 {
		t.Errorf("index after delete: %d", got)
	}
}

func TestStats(t *testing.T) {
	tbl := newTestTable(t)
	tbl.Insert(row(1, "a", 10))                                             //nolint:errcheck
	tbl.Insert(row(2, "b", 20))                                             //nolint:errcheck
	tbl.Insert(row(3, "a", 30))                                             //nolint:errcheck
	tbl.Insert(schema.Row{value.NewInt(4), value.Null(), value.NewInt(20)}) //nolint:errcheck

	ts := tbl.Stats()
	if ts.Rows != 4 {
		t.Errorf("rows = %d", ts.Rows)
	}
	owner, ok := ts.Col("owner")
	if !ok || owner.Distinct != 2 || owner.Nulls != 1 {
		t.Errorf("owner stats: %+v", owner)
	}
	bal, _ := ts.Col("bal")
	if bal.Distinct != 3 {
		t.Errorf("bal distinct = %d", bal.Distinct)
	}
	if lo, _ := bal.Min.Int(); lo != 10 {
		t.Errorf("bal min = %v", bal.Min)
	}
	if hi, _ := bal.Max.Int(); hi != 30 {
		t.Errorf("bal max = %v", bal.Max)
	}
	if _, ok := ts.Col("ghost"); ok {
		t.Error("stats for missing column")
	}
}

// TestModelBasedRandomOps drives the table with random operations and
// checks it against a map model — the storage engine's core invariant
// (PK uniqueness + row identity) under arbitrary interleavings.
func TestModelBasedRandomOps(t *testing.T) {
	tbl := newTestTable(t)
	model := make(map[int64]int64) // id -> bal
	rowIDs := make(map[int64]RowID)
	rng := rand.New(rand.NewSource(42))

	for step := 0; step < 5000; step++ {
		id := int64(rng.Intn(50))
		switch rng.Intn(3) {
		case 0: // insert
			rid, err := tbl.Insert(row(id, "o", id*10))
			if _, exists := model[id]; exists {
				if err == nil {
					t.Fatalf("step %d: duplicate insert of %d accepted", step, id)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: insert %d failed: %v", step, id, err)
				}
				model[id] = id * 10
				rowIDs[id] = rid
			}
		case 1: // update balance
			if _, exists := model[id]; exists {
				newBal := int64(rng.Intn(1000))
				if _, err := tbl.Update(rowIDs[id], row(id, "o", newBal)); err != nil {
					t.Fatalf("step %d: update %d: %v", step, id, err)
				}
				model[id] = newBal
			}
		case 2: // delete
			if _, exists := model[id]; exists {
				if _, err := tbl.Delete(rowIDs[id]); err != nil {
					t.Fatalf("step %d: delete %d: %v", step, id, err)
				}
				delete(model, id)
				delete(rowIDs, id)
			}
		}
	}

	if tbl.Len() != len(model) {
		t.Fatalf("table has %d rows, model has %d", tbl.Len(), len(model))
	}
	for id, bal := range model {
		_, r, ok := tbl.GetByKey([]value.Value{value.NewInt(id)})
		if !ok {
			t.Fatalf("model row %d missing from table", id)
		}
		if got, _ := r[2].Int(); got != bal {
			t.Fatalf("row %d bal = %d, model %d", id, got, bal)
		}
	}
	seen := 0
	tbl.Scan(func(_ RowID, r schema.Row) bool {
		seen++
		id, _ := r[0].Int()
		if _, ok := model[id]; !ok {
			t.Fatalf("table row %d not in model", id)
		}
		return true
	})
	if seen != len(model) {
		t.Fatalf("scan saw %d rows, model has %d", seen, len(model))
	}
}

func TestCompositeKey(t *testing.T) {
	tbl, err := NewTable(&schema.Schema{
		Table: "enroll",
		Columns: []schema.Column{
			{Name: "sid", Type: schema.TInt},
			{Name: "course", Type: schema.TText},
		},
		Key: []string{"sid", "course"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ins := func(sid int64, c string) error {
		_, err := tbl.Insert(schema.Row{value.NewInt(sid), value.NewText(c)})
		return err
	}
	if err := ins(1, "db"); err != nil {
		t.Fatal(err)
	}
	if err := ins(1, "os"); err != nil {
		t.Fatal(err)
	}
	if err := ins(2, "db"); err != nil {
		t.Fatal(err)
	}
	if err := ins(1, "db"); err == nil {
		t.Error("composite dup accepted")
	}
	_, _, ok := tbl.GetByKey([]value.Value{value.NewInt(1), value.NewText("os")})
	if !ok {
		t.Error("composite key lookup failed")
	}
}

func TestKeylessTable(t *testing.T) {
	tbl, err := NewTable(&schema.Schema{
		Table:   "log",
		Columns: []schema.Column{{Name: "msg", Type: schema.TText}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.HasPK() {
		t.Error("keyless table reports PK")
	}
	// Duplicates are fine.
	tbl.Insert(schema.Row{value.NewText("x")}) //nolint:errcheck
	tbl.Insert(schema.Row{value.NewText("x")}) //nolint:errcheck
	if tbl.Len() != 2 {
		t.Error("duplicate rows rejected in keyless table")
	}
	if _, _, ok := tbl.GetByKey([]value.Value{value.NewText("x")}); ok {
		t.Error("GetByKey on keyless table succeeded")
	}
}

// Package storage implements the heap-table storage engine used by the
// component DBMSs: append-only row slots with tombstones, a primary-key
// hash index, optional secondary indexes (hash for equality, ordered
// B+trees for range scans and sort-order delivery), and per-column
// statistics — computed on demand and cached with bounded staleness —
// used by the access-path planners. See README.md for the access-method
// catalog and the ordering contract.
//
// The engine is deliberately not thread-safe: concurrency control is the
// job of the lock manager (internal/lockmgr) driven by the DBMS
// transaction layer, matching the paper's strict-2PL component DBMSs.
// (The statistics cache carries its own internal synchronization so
// concurrent readers under the database latch can share it.)
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"myriad/internal/schema"
	"myriad/internal/value"
)

// RowID identifies a row slot within a table for the lifetime of the
// table. Slots are never reused so undo records stay valid.
type RowID int64

// Table is one heap relation plus its indexes.
type Table struct {
	Schema *schema.Schema

	rows    []schema.Row // nil entry = tombstone
	live    int
	pk      map[string]RowID       // primary-key index (composite keys joined)
	indexes map[string]*HashIndex  // secondary hash, by lower-cased column name
	ordered map[string]*orderedDef // secondary ordered, by lower-cased comma-joined column list

	// Statistics cache (see CachedStats). muts counts mutations since
	// creation and is atomic so readers under the shared database latch
	// can check staleness against writers; the cache itself is guarded
	// by statsMu because concurrent readers may race to refill it.
	muts    atomic.Int64
	statsMu sync.Mutex
	stats   *TableStats
	statsAt int64
}

// NewTable creates an empty table for the schema (which is validated).
func NewTable(sc *schema.Schema) (*Table, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		Schema:  sc.Clone(),
		indexes: make(map[string]*HashIndex),
		ordered: make(map[string]*orderedDef),
	}
	if len(sc.Key) > 0 {
		t.pk = make(map[string]RowID)
	}
	return t, nil
}

// keyString encodes the primary-key columns of a row for index lookup.
func (t *Table) keyString(r schema.Row) (string, error) {
	idx := t.Schema.KeyIndexes()
	var b strings.Builder
	for i, ki := range idx {
		v := r[ki]
		if v.IsNull() {
			return "", fmt.Errorf("storage %s: NULL in primary key column %s", t.Schema.Table, t.Schema.Key[i])
		}
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteByte(byte(v.K))
		b.WriteString(v.Text())
	}
	return b.String(), nil
}

// KeyString exposes the PK encoding of a row (used by the lock manager's
// row-resource naming).
func (t *Table) KeyString(r schema.Row) (string, error) { return t.keyString(r) }

// Insert adds a row (already coerced to the schema) and returns its
// RowID. Violating the primary key is an error.
func (t *Table) Insert(r schema.Row) (RowID, error) {
	coerced, err := schema.CoerceRow(t.Schema, r)
	if err != nil {
		return 0, err
	}
	var key string
	if t.pk != nil {
		key, err = t.keyString(coerced)
		if err != nil {
			return 0, err
		}
		if _, dup := t.pk[key]; dup {
			return 0, fmt.Errorf("storage %s: duplicate primary key %v", t.Schema.Table, key)
		}
	}
	id := RowID(len(t.rows))
	t.rows = append(t.rows, coerced)
	t.live++
	if t.pk != nil {
		t.pk[key] = id
	}
	for col, ix := range t.indexes {
		ci := t.Schema.ColIndex(col)
		ix.add(coerced[ci], id)
	}
	for _, d := range t.ordered {
		d.ix.add(d.keyOf(coerced), id)
	}
	t.muts.Add(1)
	return id, nil
}

// InsertAt re-inserts a row at a specific slot (undo of delete). The slot
// must be a tombstone.
func (t *Table) InsertAt(id RowID, r schema.Row) error {
	if int(id) >= len(t.rows) || t.rows[id] != nil {
		return fmt.Errorf("storage %s: slot %d not free", t.Schema.Table, id)
	}
	if t.pk != nil {
		key, err := t.keyString(r)
		if err != nil {
			return err
		}
		if _, dup := t.pk[key]; dup {
			return fmt.Errorf("storage %s: duplicate primary key on undo", t.Schema.Table)
		}
		t.pk[key] = id
	}
	t.rows[id] = r
	t.live++
	for col, ix := range t.indexes {
		ci := t.Schema.ColIndex(col)
		ix.add(r[ci], id)
	}
	for _, d := range t.ordered {
		d.ix.add(d.keyOf(r), id)
	}
	t.muts.Add(1)
	return nil
}

// ApplyInsert places a row at an exact slot, growing the heap with
// tombstones as needed. WAL replay and slot-preserving snapshot restore
// use it: committed rows must land on their original RowIDs (slots
// consumed by uncommitted or aborted transactions stay tombstones) so
// the recovered heap order — and every RowID-tie-broken ordered-index
// walk — is identical to the pre-crash committed state. The target slot
// must not hold a live row.
func (t *Table) ApplyInsert(id RowID, r schema.Row) error {
	if id < 0 {
		return fmt.Errorf("storage %s: negative slot %d", t.Schema.Table, id)
	}
	coerced, err := schema.CoerceRow(t.Schema, r)
	if err != nil {
		return err
	}
	if int(id) < len(t.rows) {
		if t.rows[id] != nil {
			return fmt.Errorf("storage %s: slot %d already occupied", t.Schema.Table, id)
		}
	} else {
		for int64(len(t.rows)) <= int64(id) {
			t.rows = append(t.rows, nil)
		}
	}
	var key string
	if t.pk != nil {
		if key, err = t.keyString(coerced); err != nil {
			return err
		}
		if _, dup := t.pk[key]; dup {
			return fmt.Errorf("storage %s: duplicate primary key %v on replay", t.Schema.Table, key)
		}
		t.pk[key] = id
	}
	t.rows[id] = coerced
	t.live++
	for col, ix := range t.indexes {
		ci := t.Schema.ColIndex(col)
		ix.add(coerced[ci], id)
	}
	for _, d := range t.ordered {
		d.ix.add(d.keyOf(coerced), id)
	}
	t.muts.Add(1)
	return nil
}

// ReserveSlots grows the heap with tombstones so a plain Insert never
// allocates a slot at or below id. Recovery of a prepared (in-doubt)
// two-phase-commit branch uses it: the branch's redo ops target
// explicit slots that must stay free until the branch commits or
// aborts, so post-recovery inserts by other transactions must allocate
// past them.
func (t *Table) ReserveSlots(id RowID) {
	for int64(len(t.rows)) <= int64(id) {
		t.rows = append(t.rows, nil)
	}
}

// Get returns the row at id, or nil when deleted/out of range.
func (t *Table) Get(id RowID) schema.Row {
	if id < 0 || int(id) >= len(t.rows) {
		return nil
	}
	return t.rows[id]
}

// GetByKey looks up a row by primary key values (in key order).
func (t *Table) GetByKey(keyVals []value.Value) (RowID, schema.Row, bool) {
	if t.pk == nil || len(keyVals) != len(t.Schema.Key) {
		return 0, nil, false
	}
	probe := make(schema.Row, len(t.Schema.Columns))
	for i, ki := range t.Schema.KeyIndexes() {
		probe[ki] = keyVals[i]
	}
	key, err := t.keyString(probe)
	if err != nil {
		return 0, nil, false
	}
	id, ok := t.pk[key]
	if !ok {
		return 0, nil, false
	}
	return id, t.rows[id], true
}

// Delete removes the row at id and returns the old row for undo logging.
func (t *Table) Delete(id RowID) (schema.Row, error) {
	old := t.Get(id)
	if old == nil {
		return nil, fmt.Errorf("storage %s: delete of missing row %d", t.Schema.Table, id)
	}
	if t.pk != nil {
		key, err := t.keyString(old)
		if err == nil {
			delete(t.pk, key)
		}
	}
	for col, ix := range t.indexes {
		ci := t.Schema.ColIndex(col)
		ix.remove(old[ci], id)
	}
	for _, d := range t.ordered {
		d.ix.remove(d.keyOf(old), id)
	}
	t.rows[id] = nil
	t.live--
	t.muts.Add(1)
	return old, nil
}

// Update replaces the row at id and returns the old row for undo
// logging. Primary-key changes are re-indexed (and may conflict).
func (t *Table) Update(id RowID, r schema.Row) (schema.Row, error) {
	old := t.Get(id)
	if old == nil {
		return nil, fmt.Errorf("storage %s: update of missing row %d", t.Schema.Table, id)
	}
	coerced, err := schema.CoerceRow(t.Schema, r)
	if err != nil {
		return nil, err
	}
	if t.pk != nil {
		oldKey, err1 := t.keyString(old)
		newKey, err2 := t.keyString(coerced)
		if err2 != nil {
			return nil, err2
		}
		if err1 == nil && oldKey != newKey {
			if _, dup := t.pk[newKey]; dup {
				return nil, fmt.Errorf("storage %s: duplicate primary key on update", t.Schema.Table)
			}
			delete(t.pk, oldKey)
			t.pk[newKey] = id
		}
	}
	for col, ix := range t.indexes {
		ci := t.Schema.ColIndex(col)
		if !value.Identical(old[ci], coerced[ci]) {
			ix.remove(old[ci], id)
			ix.add(coerced[ci], id)
		}
	}
	for _, d := range t.ordered {
		changed := false
		for _, ci := range d.cis {
			if !value.Identical(old[ci], coerced[ci]) {
				changed = true
				break
			}
		}
		if changed {
			d.ix.remove(d.keyOf(old), id)
			d.ix.add(d.keyOf(coerced), id)
		}
	}
	t.rows[id] = coerced
	t.muts.Add(1)
	return old, nil
}

// Scan visits every live row; the visitor returns false to stop.
func (t *Table) Scan(visit func(RowID, schema.Row) bool) {
	t.ScanFrom(0, visit)
}

// ScanFrom visits live rows starting at slot start (inclusive); the
// visitor returns false to stop. A caller may resume a scan from the
// slot after the last visited row and observe each live row exactly
// once — provided the table is not mutated between segments. That is
// the caller's responsibility (the DBMS layer holds a table S lock for
// the scan's lifetime): tombstoned slots can be re-filled by a
// rollback's delete-undo (InsertAt), so the engine itself does not
// guarantee slot stability.
func (t *Table) ScanFrom(start RowID, visit func(RowID, schema.Row) bool) {
	if start < 0 {
		start = 0
	}
	for i := int(start); i < len(t.rows); i++ {
		r := t.rows[i]
		if r == nil {
			continue
		}
		if !visit(RowID(i), r) {
			return
		}
	}
}

// Len returns the number of live rows.
func (t *Table) Len() int { return t.live }

// CreateIndex builds a secondary hash index on the column.
func (t *Table) CreateIndex(column string) error {
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return fmt.Errorf("storage %s: no column %q", t.Schema.Table, column)
	}
	lc := strings.ToLower(t.Schema.Columns[ci].Name)
	if _, exists := t.indexes[lc]; exists {
		return fmt.Errorf("storage %s: index on %q already exists", t.Schema.Table, column)
	}
	ix := NewHashIndex()
	t.Scan(func(id RowID, r schema.Row) bool {
		ix.add(r[ci], id)
		return true
	})
	t.indexes[lc] = ix
	return nil
}

// Index returns the secondary hash index on column, if any.
func (t *Table) Index(column string) (*HashIndex, bool) {
	ix, ok := t.indexes[strings.ToLower(column)]
	return ix, ok
}

// orderedDef binds an ordered index to its key columns.
type orderedDef struct {
	cols []string // schema-cased column names, in index key order
	cis  []int    // column positions in the schema, parallel to cols
	ix   *OrderedIndex
}

// keyOf extracts the index key tuple from a row.
func (d *orderedDef) keyOf(r schema.Row) []value.Value {
	vs := make([]value.Value, len(d.cis))
	for i, ci := range d.cis {
		vs[i] = r[ci]
	}
	return vs
}

// orderedKey names an ordered index by its column list (lower-cased,
// comma-joined) — the same columns in a different order are a different
// index.
func orderedKey(columns []string) string {
	return strings.ToLower(strings.Join(columns, ","))
}

// CreateOrderedIndex builds an ordered secondary index over the columns
// (one for a single-column index, several for a composite index ordered
// by the first column, then the second, and so on).
func (t *Table) CreateOrderedIndex(columns ...string) error {
	if len(columns) == 0 {
		return fmt.Errorf("storage %s: ordered index needs at least one column", t.Schema.Table)
	}
	d := &orderedDef{ix: NewOrderedIndex(len(columns))}
	seen := make(map[int]bool, len(columns))
	for _, col := range columns {
		ci := t.Schema.ColIndex(col)
		if ci < 0 {
			return fmt.Errorf("storage %s: no column %q", t.Schema.Table, col)
		}
		if seen[ci] {
			return fmt.Errorf("storage %s: duplicate column %q in ordered index", t.Schema.Table, col)
		}
		seen[ci] = true
		d.cols = append(d.cols, t.Schema.Columns[ci].Name)
		d.cis = append(d.cis, ci)
	}
	key := orderedKey(d.cols)
	if _, exists := t.ordered[key]; exists {
		return fmt.Errorf("storage %s: ordered index on %q already exists", t.Schema.Table, strings.Join(d.cols, ", "))
	}
	t.Scan(func(id RowID, r schema.Row) bool {
		d.ix.add(d.keyOf(r), id)
		return true
	})
	t.ordered[key] = d
	return nil
}

// OrderedIndex returns the single-column ordered secondary index on
// column, if any.
func (t *Table) OrderedIndex(column string) (*OrderedIndex, bool) {
	d, ok := t.ordered[orderedKey([]string{column})]
	if !ok {
		return nil, false
	}
	return d.ix, true
}

// OrderedIndexInfo describes one ordered index for planners, explain
// output, and snapshots.
type OrderedIndexInfo struct {
	Columns []string // schema-cased, in index key order
	Index   *OrderedIndex
}

// OrderedIndexes lists every ordered index (single-column and
// composite) in a deterministic order: by width, then by the position
// of the leading column in the schema, then by the full column list.
func (t *Table) OrderedIndexes() []OrderedIndexInfo {
	infos := make([]OrderedIndexInfo, 0, len(t.ordered))
	pos := make(map[string]int)
	for _, d := range t.ordered {
		infos = append(infos, OrderedIndexInfo{Columns: d.cols, Index: d.ix})
		pos[orderedKey(d.cols)] = d.cis[0]
	}
	sort.Slice(infos, func(a, b int) bool {
		ca, cb := infos[a].Columns, infos[b].Columns
		if len(ca) != len(cb) {
			return len(ca) < len(cb)
		}
		if pa, pb := pos[orderedKey(ca)], pos[orderedKey(cb)]; pa != pb {
			return pa < pb
		}
		return orderedKey(ca) < orderedKey(cb)
	})
	return infos
}

// OrderedIndexColumns lists the single-column ordered-indexed columns
// in schema order. Composite indexes are not included — enumerate them
// with OrderedIndexes.
func (t *Table) OrderedIndexColumns() []string {
	var cols []string
	for _, c := range t.Schema.Columns {
		if _, ok := t.ordered[orderedKey([]string{c.Name})]; ok {
			cols = append(cols, c.Name)
		}
	}
	return cols
}

// HasPK reports whether the table has a primary-key index.
func (t *Table) HasPK() bool { return t.pk != nil }

// HashIndex is an equality index from value to row ids.
type HashIndex struct {
	m map[uint64][]entry
}

type entry struct {
	v  value.Value
	id RowID
}

// NewHashIndex returns an empty index.
func NewHashIndex() *HashIndex { return &HashIndex{m: make(map[uint64][]entry)} }

func (ix *HashIndex) add(v value.Value, id RowID) {
	h := v.Hash()
	ix.m[h] = append(ix.m[h], entry{v: v, id: id})
}

func (ix *HashIndex) remove(v value.Value, id RowID) {
	h := v.Hash()
	es := ix.m[h]
	for i, e := range es {
		if e.id == id {
			ix.m[h] = append(es[:i], es[i+1:]...)
			return
		}
	}
}

// Lookup returns the row ids whose indexed value is Identical to v.
func (ix *HashIndex) Lookup(v value.Value) []RowID {
	var ids []RowID
	for _, e := range ix.m[v.Hash()] {
		if value.Identical(e.v, v) {
			ids = append(ids, e.id)
		}
	}
	return ids
}

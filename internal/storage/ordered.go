package storage

import (
	"sort"

	"myriad/internal/schema"
	"myriad/internal/value"
)

// OrderedIndex is a secondary index that keeps (key tuple, RowID) pairs
// in the federation-wide sort order: schema.CompareSort column by
// column over the key tuple (NULLs first, the same total order the
// engine's ORDER BY and the fan-in merge use), ties broken by ascending
// RowID — which is heap arrival order, so an index walk reproduces
// exactly the stable sort of a heap scan. Single-column indexes are the
// one-column special case of the same structure; composite indexes
// (CREATE ORDERED INDEX ... ON t (a, b)) order by a first, then b, then
// RowID. It is a B+tree: inserts split nodes upward, deletes remove in
// place (an emptied node is unlinked, but siblings are never rebalanced
// — correct at any occupancy, merely sparser after adversarial delete
// patterns), and the leaf level is doubly linked for range scans in
// either direction.
//
// The order is total because a column's stored values are
// kind-homogeneous (schema.CoerceRow coerces every non-NULL value to
// the column type), so CompareSort never faces the non-transitive
// mixed-kind comparisons the merge layer guards against.
//
// Like the rest of the storage engine it is not thread-safe; the DBMS
// layer's table locks and the database latch serialize access.
type OrderedIndex struct {
	root  *onode
	size  int
	width int // key tuple width (1 for single-column indexes)
}

// orderedFanout is the maximum entries per leaf (and children per
// branch); nodes split at fanout+1.
const orderedFanout = 64

// oentry is one indexed pair: the key tuple and the heap slot.
type oentry struct {
	vs []value.Value
	id RowID
}

// onode is one B+tree node. A leaf holds ents and chains to its
// neighbors; a branch holds kids with seps[i] = the smallest entry of
// kids[i+1] (entries of kids[i] sort strictly before seps[i]).
type onode struct {
	leaf bool
	ents []oentry // leaf entries, sorted
	seps []oentry // branch separators, len(kids)-1
	kids []*onode
	next *onode // leaf chain
	prev *onode
}

// NewOrderedIndex returns an empty index over width-column key tuples.
func NewOrderedIndex(width int) *OrderedIndex {
	if width < 1 {
		width = 1
	}
	return &OrderedIndex{width: width}
}

// Len reports the number of indexed entries.
func (ix *OrderedIndex) Len() int { return ix.size }

// Width reports the key tuple width.
func (ix *OrderedIndex) Width() int { return ix.width }

// compareTuples orders two key tuples column by column under
// schema.CompareSort, over the first min(len(a), len(b)) columns.
func compareTuples(a, b []value.Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := schema.CompareSort(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// compareEntry is the index's total order: CompareSort column-wise on
// the key tuple, then RowID. Tuples of one index share a width, and
// RowIDs are unique per table, so no two entries compare equal.
func compareEntry(a, b oentry) int {
	if c := compareTuples(a.vs, b.vs); c != 0 {
		return c
	}
	switch {
	case a.id < b.id:
		return -1
	case a.id > b.id:
		return 1
	default:
		return 0
	}
}

// probe is a seek target addressing the boundary of a key-prefix group
// rather than a concrete entry: it compares against an entry by the
// prefix columns alone, and on a prefix match sorts just before the
// group (after=false) or just after it (after=true). It replaces RowID
// sentinels — with tuple keys the "before every pair with this key"
// position is a prefix boundary, not a RowID extreme.
type probe struct {
	vs    []value.Value
	after bool
}

// compareProbe orders a probe against an entry; it never returns 0.
func compareProbe(p probe, e oentry) int {
	if c := compareTuples(p.vs, e.vs); c != 0 {
		return c
	}
	if p.after {
		return 1
	}
	return -1
}

// add inserts (vs, id). The pair must not already be present (the table
// maintains the index, and a slot is indexed at most once).
func (ix *OrderedIndex) add(vs []value.Value, id RowID) {
	e := oentry{vs: vs, id: id}
	if ix.root == nil {
		ix.root = &onode{leaf: true, ents: []oentry{e}}
		ix.size++
		return
	}
	right, sep, split := ix.insert(ix.root, e)
	if split {
		ix.root = &onode{kids: []*onode{ix.root, right}, seps: []oentry{sep}}
	}
	ix.size++
}

// insert descends to the leaf for e, inserts, and splits back up.
func (ix *OrderedIndex) insert(n *onode, e oentry) (right *onode, sep oentry, split bool) {
	if n.leaf {
		pos := sort.Search(len(n.ents), func(j int) bool { return compareEntry(e, n.ents[j]) < 0 })
		n.ents = append(n.ents, oentry{})
		copy(n.ents[pos+1:], n.ents[pos:])
		n.ents[pos] = e
		if len(n.ents) <= orderedFanout {
			return nil, oentry{}, false
		}
		mid := len(n.ents) / 2
		r := &onode{leaf: true, ents: append([]oentry(nil), n.ents[mid:]...)}
		n.ents = n.ents[:mid:mid]
		r.next, r.prev = n.next, n
		if n.next != nil {
			n.next.prev = r
		}
		n.next = r
		return r, r.ents[0], true
	}
	ci := sort.Search(len(n.seps), func(i int) bool { return compareEntry(e, n.seps[i]) < 0 })
	r, s, sp := ix.insert(n.kids[ci], e)
	if !sp {
		return nil, oentry{}, false
	}
	n.seps = append(n.seps, oentry{})
	copy(n.seps[ci+1:], n.seps[ci:])
	n.seps[ci] = s
	n.kids = append(n.kids, nil)
	copy(n.kids[ci+2:], n.kids[ci+1:])
	n.kids[ci+1] = r
	if len(n.kids) <= orderedFanout {
		return nil, oentry{}, false
	}
	mid := len(n.kids) / 2
	promoted := n.seps[mid-1]
	rb := &onode{
		kids: append([]*onode(nil), n.kids[mid:]...),
		seps: append([]oentry(nil), n.seps[mid:]...),
	}
	n.kids = n.kids[:mid:mid]
	n.seps = n.seps[: mid-1 : mid-1]
	return rb, promoted, true
}

// remove deletes (vs, id) if present.
func (ix *OrderedIndex) remove(vs []value.Value, id RowID) {
	if ix.root == nil {
		return
	}
	if removed, _ := ix.delete(ix.root, oentry{vs: vs, id: id}); removed {
		ix.size--
	}
	// Collapse a chain of single-child roots so height tracks size.
	for !ix.root.leaf && len(ix.root.kids) == 1 {
		ix.root = ix.root.kids[0]
	}
	if ix.root.leaf && len(ix.root.ents) == 0 {
		ix.root = nil
	}
}

// delete removes e from the subtree, reporting whether it was found and
// whether the node emptied (the parent then drops the child).
func (ix *OrderedIndex) delete(n *onode, e oentry) (removed, emptied bool) {
	if n.leaf {
		pos := sort.Search(len(n.ents), func(j int) bool { return compareEntry(n.ents[j], e) >= 0 })
		if pos >= len(n.ents) || compareEntry(n.ents[pos], e) != 0 {
			return false, false
		}
		copy(n.ents[pos:], n.ents[pos+1:])
		n.ents = n.ents[:len(n.ents)-1]
		if len(n.ents) > 0 {
			return true, false
		}
		// Unlink the emptied leaf so chain walks never see it.
		if n.prev != nil {
			n.prev.next = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		}
		n.prev, n.next = nil, nil
		return true, true
	}
	ci := sort.Search(len(n.seps), func(i int) bool { return compareEntry(e, n.seps[i]) < 0 })
	removed, kidEmpty := ix.delete(n.kids[ci], e)
	if !kidEmpty {
		return removed, false
	}
	copy(n.kids[ci:], n.kids[ci+1:])
	n.kids = n.kids[:len(n.kids)-1]
	if len(n.seps) > 0 {
		si := ci
		if si > 0 {
			si--
		}
		copy(n.seps[si:], n.seps[si+1:])
		n.seps = n.seps[:len(n.seps)-1]
	}
	return removed, len(n.kids) == 0
}

// ---------------------------------------------------------------------
// Range scans

// Bound is one end of a single-column ordered-index scan range. The
// zero Bound is unbounded. V may be NULL: NULLs sort first, so an
// exclusive NULL lower bound means "skip the NULL entries" — how a
// predicate-driven scan expresses SQL's NULL-excluding comparisons.
type Bound struct {
	V         value.Value
	Inclusive bool
	Set       bool
}

// BoundAt returns an inclusive or exclusive bound at v.
func BoundAt(v value.Value, inclusive bool) Bound {
	return Bound{V: v, Inclusive: inclusive, Set: true}
}

// TupleBound is one end of a composite-index scan range: a key-tuple
// prefix of up to the index width. An inclusive bound admits every
// entry whose prefix equals Vs; an exclusive bound excludes the whole
// prefix group — so an equality prefix plus a range column expresses as
// lo = (eq..., x) and hi = (eq...) inclusive, and pure prefix equality
// as lo = hi = (eq...) inclusive. The zero TupleBound is unbounded.
type TupleBound struct {
	Vs        []value.Value
	Inclusive bool
	Set       bool
}

// TupleBoundAt returns an inclusive or exclusive tuple bound at vs.
func TupleBoundAt(vs []value.Value, inclusive bool) TupleBound {
	return TupleBound{Vs: vs, Inclusive: inclusive, Set: true}
}

// tupleBound converts a single-column bound.
func (b Bound) tupleBound() TupleBound {
	if !b.Set {
		return TupleBound{}
	}
	return TupleBound{Vs: []value.Value{b.V}, Inclusive: b.Inclusive, Set: true}
}

// opos is a cursor position: an entry within a leaf. The zero opos is
// invalid (past either end).
type opos struct {
	n *onode
	i int
}

func (p opos) valid() bool { return p.n != nil }

func (p opos) entry() oentry { return p.n.ents[p.i] }

func (p opos) fwd() opos {
	if p.i+1 < len(p.n.ents) {
		return opos{p.n, p.i + 1}
	}
	if p.n.next != nil {
		return opos{p.n.next, 0}
	}
	return opos{}
}

func (p opos) back() opos {
	if p.i > 0 {
		return opos{p.n, p.i - 1}
	}
	if p.n.prev != nil {
		return opos{p.n.prev, len(p.n.prev.ents) - 1}
	}
	return opos{}
}

// seekProbe returns the position of the first entry the probe sorts
// before, or invalid when every entry sorts before it.
func (ix *OrderedIndex) seekProbe(p probe) opos {
	n := ix.root
	if n == nil {
		return opos{}
	}
	for !n.leaf {
		ci := sort.Search(len(n.seps), func(i int) bool { return compareProbe(p, n.seps[i]) < 0 })
		n = n.kids[ci]
	}
	pos := sort.Search(len(n.ents), func(j int) bool { return compareProbe(p, n.ents[j]) < 0 })
	if pos < len(n.ents) {
		return opos{n, pos}
	}
	if n.next != nil {
		return opos{n.next, 0}
	}
	return opos{}
}

// first returns the leftmost position.
func (ix *OrderedIndex) first() opos {
	n := ix.root
	if n == nil {
		return opos{}
	}
	for !n.leaf {
		n = n.kids[0]
	}
	return opos{n, 0}
}

// last returns the rightmost position.
func (ix *OrderedIndex) last() opos {
	n := ix.root
	if n == nil {
		return opos{}
	}
	for !n.leaf {
		n = n.kids[len(n.kids)-1]
	}
	return opos{n, len(n.ents) - 1}
}

// Cursor opens a single-column range scan over [lo, hi] in either
// direction; see CursorTuple for the ordering contract.
func (ix *OrderedIndex) Cursor(lo, hi Bound, desc bool) *OrderedCursor {
	return ix.CursorTuple(lo.tupleBound(), hi.tupleBound(), desc)
}

// CursorTuple opens a range scan over [lo, hi] prefix bounds in either
// direction.
//
// Ascending order is (key tuple asc, RowID asc). Descending order is
// (key tuple desc, RowID asc within each equal-tuple group): a
// descending walk emits each group of equal tuples in ascending-RowID
// order, so it reproduces exactly a stable descending sort of the
// heap's arrival order — the contract that lets the engine substitute a
// backward index walk for ORDER BY ... DESC without changing a single
// tie.
//
// The cursor holds positions into the tree; the index must not be
// mutated while a cursor is live (the DBMS layer's table S lock
// guarantees that for the statement's lifetime).
func (ix *OrderedIndex) CursorTuple(lo, hi TupleBound, desc bool) *OrderedCursor {
	c := &OrderedCursor{ix: ix, lo: lo, hi: hi, desc: desc}
	if desc {
		c.initDesc()
	} else {
		c.initAsc()
	}
	return c
}

// OrderedCursor walks an ordered-index range; see CursorTuple.
type OrderedCursor struct {
	ix     *OrderedIndex
	lo, hi TupleBound
	desc   bool

	pos opos // ascending: next entry to emit
	// descending: the current equal-tuple group [gstart, gend] is
	// emitted forward from gcur; then the walk steps back before gstart.
	gstart, gcur, gend opos
	done               bool
}

// belowLo reports whether vs sorts before the scan's lower bound.
func (c *OrderedCursor) belowLo(vs []value.Value) bool {
	if !c.lo.Set {
		return false
	}
	cmp := compareTuples(vs, c.lo.Vs)
	return cmp < 0 || (cmp == 0 && !c.lo.Inclusive)
}

// aboveHi reports whether vs sorts after the scan's upper bound.
func (c *OrderedCursor) aboveHi(vs []value.Value) bool {
	if !c.hi.Set {
		return false
	}
	cmp := compareTuples(vs, c.hi.Vs)
	return cmp > 0 || (cmp == 0 && !c.hi.Inclusive)
}

func (c *OrderedCursor) initAsc() {
	if !c.lo.Set {
		c.pos = c.ix.first()
		return
	}
	// An inclusive bound starts at the prefix group's first entry, an
	// exclusive one just past its last.
	c.pos = c.ix.seekProbe(probe{vs: c.lo.Vs, after: !c.lo.Inclusive})
}

func (c *OrderedCursor) initDesc() {
	var p opos
	if !c.hi.Set {
		p = c.ix.last()
	} else {
		// The first entry past the bound; its predecessor is the last in
		// range. An inclusive bound probes past the whole prefix group,
		// an exclusive one probes before it.
		if after := c.ix.seekProbe(probe{vs: c.hi.Vs, after: c.hi.Inclusive}); after.valid() {
			p = after.back()
		} else {
			p = c.ix.last()
		}
	}
	if !p.valid() || c.belowLo(p.entry().vs) {
		c.done = true
		return
	}
	c.openGroup(p)
}

// openGroup positions the cursor on the equal-tuple group ending at
// end (inclusive), to be emitted in forward (ascending RowID) order.
func (c *OrderedCursor) openGroup(end opos) {
	vs := end.entry().vs
	start := end
	for {
		p := start.back()
		if !p.valid() || compareTuples(p.entry().vs, vs) != 0 {
			break
		}
		start = p
	}
	c.gstart, c.gcur, c.gend = start, start, end
}

// Next returns the next row id in scan order; ok is false at the end
// of the range.
func (c *OrderedCursor) Next() (RowID, bool) {
	if c.done {
		return 0, false
	}
	if !c.desc {
		if !c.pos.valid() || c.aboveHi(c.pos.entry().vs) {
			c.done = true
			return 0, false
		}
		id := c.pos.entry().id
		c.pos = c.pos.fwd()
		return id, true
	}
	e := c.gcur.entry()
	if c.gcur == c.gend {
		// Group exhausted after this entry: the entry before the group's
		// start carries the next (smaller) tuple; bound-check it and open
		// its group.
		p := c.gstart.back()
		if !p.valid() || c.belowLo(p.entry().vs) {
			c.done = true
		} else {
			c.openGroup(p)
		}
	} else {
		c.gcur = c.gcur.fwd()
	}
	return e.id, true
}

package storage

import (
	"math"
	"sort"

	"myriad/internal/schema"
	"myriad/internal/value"
)

// OrderedIndex is a secondary index that keeps (value, RowID) pairs in
// the federation-wide sort order: schema.CompareSort over the value
// (NULLs first, the same total order the engine's ORDER BY and the
// fan-in merge use), ties broken by ascending RowID — which is heap
// arrival order, so an index walk reproduces exactly the stable sort of
// a heap scan. It is a B+tree: inserts split nodes upward, deletes
// remove in place (an emptied node is unlinked, but siblings are never
// rebalanced — correct at any occupancy, merely sparser after
// adversarial delete patterns), and the leaf level is doubly linked for
// range scans in either direction.
//
// The order is total because a column's stored values are
// kind-homogeneous (schema.CoerceRow coerces every non-NULL value to
// the column type), so CompareSort never faces the non-transitive
// mixed-kind comparisons the merge layer guards against.
//
// Like the rest of the storage engine it is not thread-safe; the DBMS
// layer's table locks and the database latch serialize access.
type OrderedIndex struct {
	root *onode
	size int
}

// orderedFanout is the maximum entries per leaf (and children per
// branch); nodes split at fanout+1.
const orderedFanout = 64

// oentry is one indexed pair.
type oentry struct {
	v  value.Value
	id RowID
}

// onode is one B+tree node. A leaf holds ents and chains to its
// neighbors; a branch holds kids with seps[i] = the smallest entry of
// kids[i+1] (entries of kids[i] sort strictly before seps[i]).
type onode struct {
	leaf bool
	ents []oentry // leaf entries, sorted
	seps []oentry // branch separators, len(kids)-1
	kids []*onode
	next *onode // leaf chain
	prev *onode
}

// NewOrderedIndex returns an empty index.
func NewOrderedIndex() *OrderedIndex { return &OrderedIndex{} }

// Len reports the number of indexed entries.
func (ix *OrderedIndex) Len() int { return ix.size }

// compareEntry is the index's total order: CompareSort on the value,
// then RowID. RowIDs are unique per table, so no two entries of one
// index compare equal.
func compareEntry(a, b oentry) int {
	if c := schema.CompareSort(a.v, b.v); c != 0 {
		return c
	}
	switch {
	case a.id < b.id:
		return -1
	case a.id > b.id:
		return 1
	default:
		return 0
	}
}

// add inserts (v, id). The pair must not already be present (the table
// maintains the index, and a slot is indexed at most once).
func (ix *OrderedIndex) add(v value.Value, id RowID) {
	e := oentry{v: v, id: id}
	if ix.root == nil {
		ix.root = &onode{leaf: true, ents: []oentry{e}}
		ix.size++
		return
	}
	right, sep, split := ix.insert(ix.root, e)
	if split {
		ix.root = &onode{kids: []*onode{ix.root, right}, seps: []oentry{sep}}
	}
	ix.size++
}

// insert descends to the leaf for e, inserts, and splits back up.
func (ix *OrderedIndex) insert(n *onode, e oentry) (right *onode, sep oentry, split bool) {
	if n.leaf {
		pos := sort.Search(len(n.ents), func(j int) bool { return compareEntry(e, n.ents[j]) < 0 })
		n.ents = append(n.ents, oentry{})
		copy(n.ents[pos+1:], n.ents[pos:])
		n.ents[pos] = e
		if len(n.ents) <= orderedFanout {
			return nil, oentry{}, false
		}
		mid := len(n.ents) / 2
		r := &onode{leaf: true, ents: append([]oentry(nil), n.ents[mid:]...)}
		n.ents = n.ents[:mid:mid]
		r.next, r.prev = n.next, n
		if n.next != nil {
			n.next.prev = r
		}
		n.next = r
		return r, r.ents[0], true
	}
	ci := sort.Search(len(n.seps), func(i int) bool { return compareEntry(e, n.seps[i]) < 0 })
	r, s, sp := ix.insert(n.kids[ci], e)
	if !sp {
		return nil, oentry{}, false
	}
	n.seps = append(n.seps, oentry{})
	copy(n.seps[ci+1:], n.seps[ci:])
	n.seps[ci] = s
	n.kids = append(n.kids, nil)
	copy(n.kids[ci+2:], n.kids[ci+1:])
	n.kids[ci+1] = r
	if len(n.kids) <= orderedFanout {
		return nil, oentry{}, false
	}
	mid := len(n.kids) / 2
	promoted := n.seps[mid-1]
	rb := &onode{
		kids: append([]*onode(nil), n.kids[mid:]...),
		seps: append([]oentry(nil), n.seps[mid:]...),
	}
	n.kids = n.kids[:mid:mid]
	n.seps = n.seps[: mid-1 : mid-1]
	return rb, promoted, true
}

// remove deletes (v, id) if present.
func (ix *OrderedIndex) remove(v value.Value, id RowID) {
	if ix.root == nil {
		return
	}
	if removed, _ := ix.delete(ix.root, oentry{v: v, id: id}); removed {
		ix.size--
	}
	// Collapse a chain of single-child roots so height tracks size.
	for !ix.root.leaf && len(ix.root.kids) == 1 {
		ix.root = ix.root.kids[0]
	}
	if ix.root.leaf && len(ix.root.ents) == 0 {
		ix.root = nil
	}
}

// delete removes e from the subtree, reporting whether it was found and
// whether the node emptied (the parent then drops the child).
func (ix *OrderedIndex) delete(n *onode, e oentry) (removed, emptied bool) {
	if n.leaf {
		pos := sort.Search(len(n.ents), func(j int) bool { return compareEntry(n.ents[j], e) >= 0 })
		if pos >= len(n.ents) || compareEntry(n.ents[pos], e) != 0 {
			return false, false
		}
		copy(n.ents[pos:], n.ents[pos+1:])
		n.ents = n.ents[:len(n.ents)-1]
		if len(n.ents) > 0 {
			return true, false
		}
		// Unlink the emptied leaf so chain walks never see it.
		if n.prev != nil {
			n.prev.next = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		}
		n.prev, n.next = nil, nil
		return true, true
	}
	ci := sort.Search(len(n.seps), func(i int) bool { return compareEntry(e, n.seps[i]) < 0 })
	removed, kidEmpty := ix.delete(n.kids[ci], e)
	if !kidEmpty {
		return removed, false
	}
	copy(n.kids[ci:], n.kids[ci+1:])
	n.kids = n.kids[:len(n.kids)-1]
	if len(n.seps) > 0 {
		si := ci
		if si > 0 {
			si--
		}
		copy(n.seps[si:], n.seps[si+1:])
		n.seps = n.seps[:len(n.seps)-1]
	}
	return removed, len(n.kids) == 0
}

// ---------------------------------------------------------------------
// Range scans

// Bound is one end of an ordered-index scan range. The zero Bound is
// unbounded. V may be NULL: NULLs sort first, so an exclusive NULL
// lower bound means "skip the NULL entries" — how a predicate-driven
// scan expresses SQL's NULL-excluding comparisons.
type Bound struct {
	V         value.Value
	Inclusive bool
	Set       bool
}

// BoundAt returns an inclusive or exclusive bound at v.
func BoundAt(v value.Value, inclusive bool) Bound {
	return Bound{V: v, Inclusive: inclusive, Set: true}
}

// opos is a cursor position: an entry within a leaf. The zero opos is
// invalid (past either end).
type opos struct {
	n *onode
	i int
}

func (p opos) valid() bool { return p.n != nil }

func (p opos) entry() oentry { return p.n.ents[p.i] }

func (p opos) fwd() opos {
	if p.i+1 < len(p.n.ents) {
		return opos{p.n, p.i + 1}
	}
	if p.n.next != nil {
		return opos{p.n.next, 0}
	}
	return opos{}
}

func (p opos) back() opos {
	if p.i > 0 {
		return opos{p.n, p.i - 1}
	}
	if p.n.prev != nil {
		return opos{p.n.prev, len(p.n.prev.ents) - 1}
	}
	return opos{}
}

// seekGE returns the position of the first entry >= e, or invalid when
// every entry sorts before e.
func (ix *OrderedIndex) seekGE(e oentry) opos {
	n := ix.root
	if n == nil {
		return opos{}
	}
	for !n.leaf {
		ci := sort.Search(len(n.seps), func(i int) bool { return compareEntry(e, n.seps[i]) < 0 })
		n = n.kids[ci]
	}
	pos := sort.Search(len(n.ents), func(j int) bool { return compareEntry(n.ents[j], e) >= 0 })
	if pos < len(n.ents) {
		return opos{n, pos}
	}
	if n.next != nil {
		return opos{n.next, 0}
	}
	return opos{}
}

// first returns the leftmost position.
func (ix *OrderedIndex) first() opos {
	n := ix.root
	if n == nil {
		return opos{}
	}
	for !n.leaf {
		n = n.kids[0]
	}
	return opos{n, 0}
}

// last returns the rightmost position.
func (ix *OrderedIndex) last() opos {
	n := ix.root
	if n == nil {
		return opos{}
	}
	for !n.leaf {
		n = n.kids[len(n.kids)-1]
	}
	return opos{n, len(n.ents) - 1}
}

// Cursor opens a range scan over [lo, hi] in either direction.
//
// Ascending order is (value asc, RowID asc). Descending order is
// (value desc, RowID asc within each equal-value group): a descending
// walk emits each group of equal values in ascending-RowID order, so
// it reproduces exactly a stable descending sort of the heap's arrival
// order — the contract that lets the engine substitute a backward index
// walk for ORDER BY ... DESC without changing a single tie.
//
// The cursor holds positions into the tree; the index must not be
// mutated while a cursor is live (the DBMS layer's table S lock
// guarantees that for the statement's lifetime).
func (ix *OrderedIndex) Cursor(lo, hi Bound, desc bool) *OrderedCursor {
	c := &OrderedCursor{ix: ix, lo: lo, hi: hi, desc: desc}
	if desc {
		c.initDesc()
	} else {
		c.initAsc()
	}
	return c
}

// OrderedCursor walks an ordered-index range; see Cursor.
type OrderedCursor struct {
	ix     *OrderedIndex
	lo, hi Bound
	desc   bool

	pos opos // ascending: next entry to emit
	// descending: the current equal-value group [gstart, gend] is
	// emitted forward from gcur; then the walk steps back before gstart.
	gstart, gcur, gend opos
	done               bool
}

// belowLo reports whether v sorts before the scan's lower bound.
func (c *OrderedCursor) belowLo(v value.Value) bool {
	if !c.lo.Set {
		return false
	}
	cmp := schema.CompareSort(v, c.lo.V)
	return cmp < 0 || (cmp == 0 && !c.lo.Inclusive)
}

// aboveHi reports whether v sorts after the scan's upper bound.
func (c *OrderedCursor) aboveHi(v value.Value) bool {
	if !c.hi.Set {
		return false
	}
	cmp := schema.CompareSort(v, c.hi.V)
	return cmp > 0 || (cmp == 0 && !c.hi.Inclusive)
}

func (c *OrderedCursor) initAsc() {
	if !c.lo.Set {
		c.pos = c.ix.first()
		return
	}
	probe := oentry{v: c.lo.V, id: math.MinInt64}
	if !c.lo.Inclusive {
		probe.id = math.MaxInt64
	}
	c.pos = c.ix.seekGE(probe)
}

func (c *OrderedCursor) initDesc() {
	var p opos
	if !c.hi.Set {
		p = c.ix.last()
	} else {
		// The first entry past the bound; its predecessor is the last in
		// range. An inclusive bound probes past every (V, id) pair, an
		// exclusive one probes before them.
		probe := oentry{v: c.hi.V, id: math.MaxInt64}
		if !c.hi.Inclusive {
			probe.id = math.MinInt64
		}
		if after := c.ix.seekGE(probe); after.valid() {
			p = after.back()
		} else {
			p = c.ix.last()
		}
	}
	if !p.valid() || c.belowLo(p.entry().v) {
		c.done = true
		return
	}
	c.openGroup(p)
}

// openGroup positions the cursor on the equal-value group ending at
// end (inclusive), to be emitted in forward (ascending RowID) order.
func (c *OrderedCursor) openGroup(end opos) {
	v := end.entry().v
	start := end
	for {
		p := start.back()
		if !p.valid() || schema.CompareSort(p.entry().v, v) != 0 {
			break
		}
		start = p
	}
	c.gstart, c.gcur, c.gend = start, start, end
}

// Next returns the next row id in scan order; ok is false at the end
// of the range.
func (c *OrderedCursor) Next() (RowID, bool) {
	if c.done {
		return 0, false
	}
	if !c.desc {
		if !c.pos.valid() || c.aboveHi(c.pos.entry().v) {
			c.done = true
			return 0, false
		}
		id := c.pos.entry().id
		c.pos = c.pos.fwd()
		return id, true
	}
	e := c.gcur.entry()
	if c.gcur == c.gend {
		// Group exhausted after this entry: the entry before the group's
		// start carries the next (smaller) value; bound-check it and open
		// its group.
		p := c.gstart.back()
		if !p.valid() || c.belowLo(p.entry().v) {
			c.done = true
		} else {
			c.openGroup(p)
		}
	} else {
		c.gcur = c.gcur.fwd()
	}
	return e.id, true
}

package myriad_test

import (
	"context"
	"fmt"
	"log"

	"myriad"
)

// Example shows the complete life of a two-site federation: component
// databases, gateways with renamed exports, an integrated relation, a
// global query, and an atomic cross-site transaction.
func Example() {
	ctx := context.Background()

	// Two autonomous component databases with different schemas.
	north := myriad.NewComponentDB("north")
	north.MustExec(`CREATE TABLE staff (eid INTEGER PRIMARY KEY, ename TEXT NOT NULL, wage FLOAT)`)
	north.MustExec(`INSERT INTO staff VALUES (1, 'amy', 52.5), (2, 'ben', 41.0)`)

	south := myriad.NewComponentDB("south")
	south.MustExec(`CREATE TABLE workers (id INTEGER PRIMARY KEY, name TEXT NOT NULL, hourly FLOAT)`)
	south.MustExec(`INSERT INTO workers VALUES (10, 'dee', 38.7)`)

	// Gateways translate between the federation's canonical SQL and
	// each site's dialect, exposing renamed export relations.
	gwNorth := myriad.NewGateway("north", north, myriad.DialectOracle())
	check(gwNorth.DefineExport(myriad.Export{Name: "EMP", LocalTable: "staff",
		Columns: []myriad.ExportColumn{
			{Export: "id", Local: "eid"},
			{Export: "name", Local: "ename"},
			{Export: "rate", Local: "wage"},
		}}))
	gwSouth := myriad.NewGateway("south", south, myriad.DialectPostgres())
	check(gwSouth.DefineExport(myriad.Export{Name: "EMP", LocalTable: "workers",
		Columns: []myriad.ExportColumn{
			{Export: "id", Local: "id"},
			{Export: "name", Local: "name"},
			{Export: "rate", Local: "hourly"},
		}}))

	// The federation integrates both sites behind one relation.
	fed := myriad.NewFederation("example")
	check(fed.AttachSite(ctx, myriad.LocalConn(gwNorth)))
	check(fed.AttachSite(ctx, myriad.LocalConn(gwSouth)))
	check(fed.DefineIntegrated(&myriad.IntegratedDef{
		Name: "EMPLOYEES",
		Columns: []myriad.Column{
			{Name: "id", Type: myriad.TInt},
			{Name: "name", Type: myriad.TText},
			{Name: "rate", Type: myriad.TFloat},
		},
		Key:     []string{"id"},
		Combine: myriad.UnionAll,
		Sources: []myriad.SourceDef{
			{Site: "north", Export: "EMP", ColumnMap: map[string]string{"id": "id", "name": "name", "rate": "rate"}},
			{Site: "south", Export: "EMP", ColumnMap: map[string]string{"id": "id", "name": "name", "rate": "rate"}},
		},
	}))

	// A global query spanning both component databases.
	rs, err := fed.Query(ctx, `SELECT name FROM EMPLOYEES WHERE rate > 40 ORDER BY rate DESC`)
	check(err)
	for _, row := range rs.Rows {
		fmt.Println(row[0].Text())
	}

	// An atomic cross-site raise, via two-phase commit.
	txn := fed.Begin()
	_, err = txn.ExecSite(ctx, "north", `UPDATE EMP SET rate = rate + 1 WHERE id = 1`)
	check(err)
	_, err = txn.ExecSite(ctx, "south", `UPDATE EMP SET rate = rate + 1 WHERE id = 10`)
	check(err)
	check(txn.Commit(ctx))
	fmt.Println("raise committed")

	// Output:
	// amy
	// ben
	// raise committed
}

// ExampleFederation_Explain renders the plans the two optimization
// strategies produce for the same query.
func ExampleFederation_Explain() {
	ctx := context.Background()
	db := myriad.NewComponentDB("solo")
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)`)
	db.MustExec(`INSERT INTO t VALUES (1, 10), (2, 20)`)
	gw := myriad.NewGateway("solo", db, myriad.DialectCanonical())
	check(gw.DefineExport(myriad.Export{Name: "T", LocalTable: "t"}))
	fed := myriad.NewFederation("explain-demo")
	check(fed.AttachSite(ctx, myriad.LocalConn(gw)))
	check(fed.DefineIntegrated(&myriad.IntegratedDef{
		Name:    "DATA",
		Columns: []myriad.Column{{Name: "id", Type: myriad.TInt}, {Name: "v", Type: myriad.TFloat}},
		Combine: myriad.UnionAll,
		Sources: []myriad.SourceDef{{Site: "solo", Export: "T", ColumnMap: map[string]string{"id": "id", "v": "v"}}},
	}))

	plan, err := fed.Explain(ctx, `SELECT id FROM DATA WHERE v > 15`, myriad.StrategyCostBased)
	check(err)
	fmt.Print(plan)
	// Output:
	// strategy: cost-based
	// scan-set DATA (DATA, est 1 rows)
	//   @solo: SELECT id AS id, v AS v FROM T WHERE v > 15 (est 1)
	// residual: SELECT id FROM t0_0_data DATA WHERE v > 15
	// access @solo: T: heap ~100.0% of 2 rows
}

// ExampleRegisterIntegrationFunc installs a user-defined integration
// function that resolves attribute conflicts during outerjoin-merge.
func ExampleRegisterIntegrationFunc() {
	myriad.RegisterIntegrationFunc("shortest", func(vals []myriad.Value) (myriad.Value, error) {
		best := myriad.NullValue()
		for _, v := range vals {
			if v.IsNull() {
				continue
			}
			if best.IsNull() || len(v.Text()) < len(best.Text()) {
				best = v
			}
		}
		return best, nil
	})
	for _, name := range myriad.IntegrationFuncs() {
		if name == "shortest" {
			fmt.Println("registered")
		}
	}
	// Output:
	// registered
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

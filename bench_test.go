// Benchmark harness regenerating every experiment in EXPERIMENTS.md.
// The paper (a one-page prototype description) publishes no numeric
// tables; each benchmark operationalizes one capability claim from its
// §2. Run with:
//
//	go test -bench=. -benchmem
package myriad_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"myriad"
	"myriad/internal/catalog"
	"myriad/internal/gtm"
	"myriad/internal/integration"
	"myriad/internal/localdb"
	"myriad/internal/schema"
	"myriad/internal/workload"
)

// ---------------------------------------------------------------------
// E1 — schema integration: materializing an integrated relation via
// each relational combinator and integration functions.

func buildOverlapSites(rows, overlap int) (*myriad.Federation, func(kind integration.CombineKind) error) {
	ctx := context.Background()
	fed := myriad.NewFederation("e1")
	for s := 0; s < 2; s++ {
		name := fmt.Sprintf("s%d", s)
		db := myriad.NewComponentDB(name)
		db.MustExec(`CREATE TABLE person (pid INTEGER PRIMARY KEY, email TEXT, phone TEXT, score FLOAT)`)
		base := s * (rows - overlap) // second site re-uses `overlap` ids
		stmt := ""
		for i := 0; i < rows; i++ {
			if stmt != "" {
				stmt += ", "
			}
			id := base + i
			stmt += fmt.Sprintf("(%d, 'u%d@s%d', '555-%04d', %d.5)", id, id, s, id%10000, id%100)
			if (i+1)%500 == 0 || i == rows-1 {
				db.MustExec("INSERT INTO person VALUES " + stmt)
				stmt = ""
			}
		}
		gw := myriad.NewGateway(name, db, myriad.DialectCanonical())
		if err := gw.DefineExport(myriad.Export{Name: "PERSON", LocalTable: "person"}); err != nil {
			panic(err)
		}
		if err := fed.AttachSite(ctx, myriad.LocalConn(gw)); err != nil {
			panic(err)
		}
	}
	define := func(kind integration.CombineKind) error {
		return fed.DefineIntegrated(&catalog.IntegratedDef{
			Name: "DIRECTORY",
			Columns: []schema.Column{
				{Name: "pid", Type: schema.TInt},
				{Name: "email", Type: schema.TText},
				{Name: "phone", Type: schema.TText},
				{Name: "score", Type: schema.TFloat},
			},
			Key:     []string{"pid"},
			Combine: kind,
			Sources: []catalog.SourceDef{
				{Site: "s0", Export: "PERSON", ColumnMap: map[string]string{
					"pid": "pid", "email": "email", "phone": "phone", "score": "score"}},
				{Site: "s1", Export: "PERSON", ColumnMap: map[string]string{
					"pid": "pid", "email": "email", "phone": "phone", "score": "score"}},
			},
			Resolvers: map[string]string{"email": "first", "phone": "concat", "score": "avg"},
		})
	}
	return fed, define
}

func BenchmarkE1Integration(b *testing.B) {
	ctx := context.Background()
	for _, rows := range []int{1000, 5000} {
		kinds := []struct {
			name string
			kind integration.CombineKind
		}{
			{"union-all", integration.UnionAll},
			{"union-distinct", integration.UnionDistinct},
			{"outerjoin-merge", integration.MergeOuter},
		}
		fed, define := buildOverlapSites(rows, rows/4)
		for _, k := range kinds {
			b.Run(fmt.Sprintf("%s/rows=%d", k.name, rows), func(b *testing.B) {
				if err := define(k.kind); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var out int
				for i := 0; i < b.N; i++ {
					rs, err := fed.Query(ctx, `SELECT pid, email, phone, score FROM DIRECTORY`)
					if err != nil {
						b.Fatal(err)
					}
					out = len(rs.Rows)
				}
				b.ReportMetric(float64(out), "rows")
			})
		}
	}
}

// ---------------------------------------------------------------------
// E2 — simple vs cost-based strategy across predicate selectivity.
// weight is uniform in [0,1000): WHERE weight < X has selectivity
// X/1000. The simple strategy ships every row regardless.

func BenchmarkE2Pushdown(b *testing.B) {
	ctx := context.Background()
	dep := workload.BuildParts(workload.PartsSpec{Sites: 2, RowsPerSite: 5000, Seed: 1})
	for _, strat := range []myriad.Strategy{myriad.StrategySimple, myriad.StrategyCostBased} {
		for _, sel := range []float64{0.001, 0.01, 0.1, 0.5, 1.0} {
			name := fmt.Sprintf("%v/sel=%g", strat, sel)
			sql := fmt.Sprintf(`SELECT id, name, weight FROM PARTS WHERE weight < %f`, sel*1000)
			b.Run(name, func(b *testing.B) {
				var shipped int
				for i := 0; i < b.N; i++ {
					_, m, err := dep.Fed.QueryMetered(ctx, sql, strat)
					if err != nil {
						b.Fatal(err)
					}
					shipped = m.RowsShipped
				}
				b.ReportMetric(float64(shipped), "rows-shipped")
			})
		}
	}
}

// ---------------------------------------------------------------------
// E3 — cross-site join strategies: ship-whole (simple) vs semijoin
// reduction (cost-based). CUSTOMERS is small and filtered; ORDERS is
// large; the cost-based plan ships gold-customer ids into the orders
// site.

func BenchmarkE3Join(b *testing.B) {
	ctx := context.Background()
	for _, hot := range []float64{0.02, 0.10, 0.50} {
		dep := workload.BuildOrders(workload.OrdersSpec{
			Customers: 500, Orders: 20000, HotPercent: hot, Seed: 7,
		})
		sql := `SELECT c.cname, SUM(o.amount) AS spent
		        FROM CUSTOMERS c JOIN ORDERS o ON c.cid = o.cust
		        WHERE c.tier = 'gold' GROUP BY c.cname`
		for _, strat := range []myriad.Strategy{myriad.StrategySimple, myriad.StrategyCostBased} {
			b.Run(fmt.Sprintf("%v/gold=%g", strat, hot), func(b *testing.B) {
				var shipped int
				semi := false
				for i := 0; i < b.N; i++ {
					_, m, err := dep.Fed.QueryMetered(ctx, sql, strat)
					if err != nil {
						b.Fatal(err)
					}
					shipped = m.RowsShipped
					semi = m.SemijoinUsed
				}
				b.ReportMetric(float64(shipped), "rows-shipped")
				if semi {
					b.ReportMetric(1, "semijoin")
				} else {
					b.ReportMetric(0, "semijoin")
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// E4 — two-phase commit overhead: a global transaction touching k sites
// (k=1 uses one-phase commit). Updates hit distinct keys so no lock
// waits pollute the measurement; sub-benches add simulated site latency.

func BenchmarkE4TwoPC(b *testing.B) {
	ctx := context.Background()
	for _, delay := range []time.Duration{0, 200 * time.Microsecond} {
		dep := workload.BuildBank(workload.BankSpec{Sites: 4, AccountsPerSite: 4096, InitialBalance: 1 << 40})
		dep.SeededDelay(delay)
		for _, sites := range []int{1, 2, 3, 4} {
			b.Run(fmt.Sprintf("delay=%v/sites=%d", delay, sites), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					txn := dep.Fed.Begin()
					for s := 0; s < sites; s++ {
						acct := (i*7 + s) % 4096
						sql := fmt.Sprintf(`UPDATE ACCT SET bal = bal + 1 WHERE id = %d`, acct)
						if _, err := txn.ExecSite(ctx, fmt.Sprintf("branch%d", s), sql); err != nil {
							b.Fatal(err)
						}
					}
					if err := txn.Commit(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// E5 — resolving global deadlocks by timeout: concurrent cross-branch
// transfers with opposing lock orders under a sweep of timeout values.
// Short timeouts abort eagerly (wasted work, high abort rate); long
// timeouts stall deadlocked pairs. Goodput is committed transfers/sec.

func BenchmarkE5DeadlockTimeout(b *testing.B) {
	const workers = 8
	const hotAccounts = 4 // tiny pool -> frequent opposing lock orders
	// Each local operation takes ~500µs (simulated site latency), so a
	// 2ms timeout fires on ordinary lock waits too — the false-positive
	// half of the trade-off; 200ms converts true deadlocks into stalls.
	const siteDelay = 500 * time.Microsecond
	for _, timeout := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond} {
		b.Run(fmt.Sprintf("timeout=%v", timeout), func(b *testing.B) {
			dep := workload.BuildBank(workload.BankSpec{Sites: 2, AccountsPerSite: hotAccounts, InitialBalance: 1 << 40})
			dep.SeededDelay(siteDelay)
			dep.Fed.SetLocalQueryTimeout(timeout)
			ctx := context.Background()

			var aborts atomic.Int64
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						from, to := rng.Intn(2), rng.Intn(2)
						for to == from {
							to = rng.Intn(2)
						}
						acct := rng.Intn(hotAccounts)
						// Retry until the transfer commits; aborted
						// attempts count against goodput.
						for {
							err := dep.Fed.Transfer(ctx,
								fmt.Sprintf("branch%d", from),
								fmt.Sprintf(`UPDATE ACCT SET bal = bal - 1 WHERE id = %d`, acct),
								fmt.Sprintf("branch%d", to),
								fmt.Sprintf(`UPDATE ACCT SET bal = bal + 1 WHERE id = %d`, acct))
							if err == nil {
								break
							}
							if errors.Is(err, gtm.ErrDeadlockAbort) || errors.Is(err, gtm.ErrAborted) {
								aborts.Add(1)
								continue
							}
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(aborts.Load())/float64(b.N), "aborts/op")

			total, err := dep.TotalBalance(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if want := int64(2*hotAccounts) * (1 << 40); total != want {
				b.Fatalf("money not conserved: %d != %d", total, want)
			}
		})
	}
}

// ---------------------------------------------------------------------
// E6 — communication substrate: the identical query through in-process
// gateways vs real TCP-loopback gateways (the paper's BSD sockets).

func BenchmarkE6Transport(b *testing.B) {
	ctx := context.Background()

	build := func(remote bool) (*myriad.Federation, func()) {
		fed := myriad.NewFederation("e6")
		var stops []func() error
		for s := 0; s < 2; s++ {
			name := fmt.Sprintf("s%d", s)
			db := myriad.NewComponentDB(name)
			db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)`)
			stmt := ""
			for i := 0; i < 2000; i++ {
				if stmt != "" {
					stmt += ", "
				}
				stmt += fmt.Sprintf("(%d, %d.25)", i, i%97)
				if (i+1)%500 == 0 {
					db.MustExec("INSERT INTO t VALUES " + stmt)
					stmt = ""
				}
			}
			gw := myriad.NewGateway(name, db, myriad.DialectCanonical())
			if err := gw.DefineExport(myriad.Export{Name: "T", LocalTable: "t"}); err != nil {
				b.Fatal(err)
			}
			var conn myriad.Conn
			if remote {
				addr, stop, err := myriad.ServeGateway(gw, "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				stops = append(stops, stop)
				conn = myriad.DialGateway(name, addr, 4)
			} else {
				conn = myriad.LocalConn(gw)
			}
			if err := fed.AttachSite(ctx, conn); err != nil {
				b.Fatal(err)
			}
		}
		if err := fed.DefineIntegrated(&catalog.IntegratedDef{
			Name: "ALL_T",
			Columns: []schema.Column{
				{Name: "id", Type: schema.TInt}, {Name: "v", Type: schema.TFloat}},
			Combine: integration.UnionAll,
			Sources: []catalog.SourceDef{
				{Site: "s0", Export: "T", ColumnMap: map[string]string{"id": "id", "v": "v"}},
				{Site: "s1", Export: "T", ColumnMap: map[string]string{"id": "id", "v": "v"}},
			},
		}); err != nil {
			b.Fatal(err)
		}
		return fed, func() {
			for _, s := range stops {
				s() //nolint:errcheck
			}
		}
	}

	for _, mode := range []string{"inproc", "tcp"} {
		fed, cleanup := build(mode == "tcp")
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fed.Query(ctx, `SELECT COUNT(*), SUM(v) FROM ALL_T WHERE v < 50`); err != nil {
					b.Fatal(err)
				}
			}
		})
		cleanup()
	}
}

// ---------------------------------------------------------------------
// E7 — scale-out: a global aggregate as the federation grows. Remote
// scans run in parallel, so latency should grow sub-linearly while the
// data integrated grows linearly with the number of sites. The
// cost-based strategy additionally pushes partial aggregation into the
// sites, shipping one row per group per site instead of every row.

func BenchmarkE7Scaleout(b *testing.B) {
	ctx := context.Background()
	for _, sites := range []int{1, 2, 4, 8} {
		dep := workload.BuildParts(workload.PartsSpec{Sites: sites, RowsPerSite: 2000, Seed: 3})
		for _, strat := range []myriad.Strategy{myriad.StrategySimple, myriad.StrategyCostBased} {
			b.Run(fmt.Sprintf("%v/sites=%d", strat, sites), func(b *testing.B) {
				var shipped int
				for i := 0; i < b.N; i++ {
					_, m, err := dep.Fed.QueryMetered(ctx,
						`SELECT category, COUNT(*) AS n, ROUND(AVG(price), 2) AS avg_price FROM PARTS GROUP BY category`,
						strat)
					if err != nil {
						b.Fatal(err)
					}
					shipped = m.RowsShipped
				}
				b.ReportMetric(float64(shipped), "rows-shipped")
			})
		}
	}
}

// ---------------------------------------------------------------------
// E8 — the component DBMS's two-phase locking under contention: local
// transaction throughput with disjoint keys vs a 2-row hot set. With
// microsecond transactions the physical latch dominates, so the "hold"
// variants keep locks for an extra 200µs (think: user think-time or a
// slow disk in 1994) — there strict 2PL serializes the hot workload
// while the disjoint one still scales.

func BenchmarkE8LocalCC(b *testing.B) {
	for _, mode := range []string{"disjoint", "hot", "disjoint-hold", "hot-hold"} {
		hold := strings.HasSuffix(mode, "-hold")
		b.Run(mode, func(b *testing.B) {
			db := localdb.New("cc")
			db.MustExec(`CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER NOT NULL)`)
			stmt := ""
			for i := 0; i < 1024; i++ {
				if stmt != "" {
					stmt += ", "
				}
				stmt += fmt.Sprintf("(%d, 1000)", i)
				if (i+1)%256 == 0 {
					db.MustExec("INSERT INTO acct VALUES " + stmt)
					stmt = ""
				}
			}
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1))
				rng := rand.New(rand.NewSource(int64(w)))
				i := 0
				for pb.Next() {
					var a, c int
					if strings.HasPrefix(mode, "disjoint") {
						a = (w*131 + i) % 512
						c = 512 + (w*131+i)%512
					} else {
						// Two hot rows: every transaction conflicts.
						a, c = 0, 1
						_ = rng
					}
					i++
					for {
						ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
						tx := db.Begin()
						_, err := tx.Exec(ctx, fmt.Sprintf(`UPDATE acct SET bal = bal - 1 WHERE id = %d`, a))
						if err == nil {
							if hold {
								time.Sleep(200 * time.Microsecond) // locks held
							}
							_, err = tx.Exec(ctx, fmt.Sprintf(`UPDATE acct SET bal = bal + 1 WHERE id = %d`, c))
						}
						cancel()
						if err != nil {
							tx.Rollback()
							continue
						}
						if err := tx.Commit(); err != nil {
							b.Error(err)
							return
						}
						break
					}
				}
			})
		})
	}
}

// Command myriadctl is the interactive federation console — the paper's
// "easy-to-use query interface [that] allows federation users and DBAs
// to browse/modify/create federated schemas and pose transaction as
// well as query requests".
//
// Usage:
//
//	myriadctl -addr localhost:7100
//
// Console commands:
//
//	SELECT ...                pose a global query (inside the open
//	                          transaction, if any)
//	\explain [simple] <sql>   show the global plan
//	\catalog                  browse the federated schema
//	\d                        list integrated relations
//	\define <file.json>       create an integrated relation from JSON
//	\drop <name>              remove an integrated relation
//	\begin                    open a global transaction
//	\exec <site> <dml>        run DML at a site inside the transaction
//	\commit | \rollback       finish the transaction (two-phase commit)
//	\q                        quit
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"myriad/internal/fedclient"
	"myriad/internal/fedserver"
)

func main() {
	addr := flag.String("addr", "localhost:7100", "myriadd address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	command := flag.String("c", "", "run one console command and exit")
	flag.Parse()

	client := fedclient.Dial(*addr, 2)
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	err := client.Ping(ctx)
	cancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "myriadctl: cannot reach %s: %v\n", *addr, err)
		os.Exit(1)
	}

	if *command != "" {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		var txn *fedclient.Txn
		dispatch(ctx, client, &txn, *command)
		return
	}

	fmt.Printf("connected to federation at %s; \\q to quit, \\catalog to browse\n", *addr)
	repl(client, *timeout)
}

func repl(client *fedclient.Client, timeout time.Duration) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var txn *fedclient.Txn

	prompt := func() {
		if txn != nil {
			fmt.Printf("myriad[txn %d]> ", txn.ID())
		} else {
			fmt.Print("myriad> ")
		}
	}

	for prompt(); scanner.Scan(); prompt() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		quit := dispatch(ctx, client, &txn, line)
		cancel()
		if quit {
			return
		}
	}
}

// dispatch runs one console line; it reports whether to quit.
func dispatch(ctx context.Context, client *fedclient.Client, txn **fedclient.Txn, line string) bool {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
	}
	switch {
	case line == `\q` || line == `\quit`:
		return true

	case line == `\catalog`:
		out, err := client.Catalog(ctx)
		if err != nil {
			fail(err)
			return false
		}
		fmt.Println(out)

	case line == `\d`:
		scs, err := client.IntegratedSchemas(ctx)
		if err != nil {
			fail(err)
			return false
		}
		for _, sc := range scs {
			fmt.Println(sc)
		}

	case strings.HasPrefix(line, `\explain `):
		arg := strings.TrimSpace(line[len(`\explain `):])
		if strings.HasPrefix(arg, "simple ") {
			arg = "simple:" + strings.TrimSpace(arg[len("simple "):])
		}
		out, err := client.Explain(ctx, arg)
		if err != nil {
			fail(err)
			return false
		}
		fmt.Println(out)

	case strings.HasPrefix(line, `\drop `):
		name := strings.TrimSpace(line[len(`\drop `):])
		if err := client.Drop(ctx, name); err != nil {
			fail(err)
			return false
		}
		fmt.Printf("dropped integrated relation %s\n", name)

	case strings.HasPrefix(line, `\define `):
		path := strings.TrimSpace(line[len(`\define `):])
		raw, err := os.ReadFile(path)
		if err != nil {
			fail(err)
			return false
		}
		var def fedserver.IntegratedDefJSON
		if err := json.Unmarshal(raw, &def); err != nil {
			fail(err)
			return false
		}
		if err := client.Define(ctx, &def); err != nil {
			fail(err)
			return false
		}
		fmt.Printf("defined integrated relation %s\n", def.Name)

	case line == `\begin`:
		if *txn != nil {
			fail(fmt.Errorf("transaction %d already open", (*txn).ID()))
			return false
		}
		t, err := client.Begin(ctx)
		if err != nil {
			fail(err)
			return false
		}
		*txn = t
		fmt.Printf("global transaction %d started\n", t.ID())

	case strings.HasPrefix(line, `\exec `):
		if *txn == nil {
			fail(fmt.Errorf(`no open transaction; \begin first`))
			return false
		}
		rest := strings.TrimSpace(line[len(`\exec `):])
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 {
			fail(fmt.Errorf(`usage: \exec <site> <dml>`))
			return false
		}
		n, err := (*txn).ExecSite(ctx, parts[0], parts[1])
		if err != nil {
			fail(err)
			if !(*txn).AliveAfter(err) {
				*txn = nil
			}
			return false
		}
		fmt.Printf("%d row(s) affected at %s\n", n, parts[0])

	case line == `\commit`:
		if *txn == nil {
			fail(fmt.Errorf("no open transaction"))
			return false
		}
		if err := (*txn).Commit(ctx); err != nil {
			fail(err)
		} else {
			fmt.Println("committed (two-phase)")
		}
		*txn = nil

	case line == `\rollback` || line == `\abort`:
		if *txn == nil {
			fail(fmt.Errorf("no open transaction"))
			return false
		}
		if err := (*txn).Abort(ctx); err != nil {
			fail(err)
		} else {
			fmt.Println("rolled back")
		}
		*txn = nil

	case strings.HasPrefix(line, `\`):
		fail(fmt.Errorf("unknown command %s", line))

	default:
		// A global query, transactional when a transaction is open.
		var err error
		if *txn != nil {
			rs, qerr := (*txn).Query(ctx, line)
			if qerr == nil {
				fmt.Print(rs.String())
			}
			err = qerr
			if err != nil && !(*txn).AliveAfter(err) {
				*txn = nil
			}
		} else {
			rs, qerr := client.Query(ctx, line)
			if qerr == nil {
				fmt.Print(rs.String())
			}
			err = qerr
		}
		if err != nil {
			fail(err)
		}
	}
	return false
}

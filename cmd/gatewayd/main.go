// Command gatewayd runs one component database behind a MYRIAD gateway:
// it boots a local DBMS from a SQL setup script, defines the export
// relations offered to federations, and serves the gateway protocol
// over TCP.
//
// Usage:
//
//	gatewayd -config site.json
//
// Config format (JSON):
//
//	{
//	  "site": "east",
//	  "dialect": "oracle",          // oracle | postgres | canonical
//	  "listen": ":7101",
//	  "timeout_ms": 2000,           // per-local-query timeout (deadlock knob)
//	  "lock_wait_ms": 8000,         // lock-wait backstop; 0 = request deadline only
//	  "setup": ["CREATE TABLE ...", "INSERT INTO ..."],
//	  "setup_files": ["seed.sql"],
//	  "data_dir": "/var/lib/myriad/east", // WAL + checkpoints (crash durability)
//	  "wal_sync": "always",               // always | interval | off
//	  "checkpoint_bytes": 4194304,        // checkpoint when the WAL outgrows this

//	  "exports": [
//	    {"name": "STUDENT", "table": "students",
//	     "columns": [{"export": "id", "local": "sid"}],
//	     "predicate": "yr >= 1"}
//	  ]
//	}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"myriad/internal/comm"
	"myriad/internal/dialect"
	"myriad/internal/gateway"
	"myriad/internal/localdb"
	"myriad/internal/spill"
	"myriad/internal/sqlparser"
	"myriad/internal/wal"
)

type exportConfig struct {
	Name      string `json:"name"`
	Table     string `json:"table"`
	Columns   []col  `json:"columns,omitempty"`
	Predicate string `json:"predicate,omitempty"`
}

type col struct {
	Export string `json:"export"`
	Local  string `json:"local"`
}

type config struct {
	Site       string         `json:"site"`
	Dialect    string         `json:"dialect"`
	Listen     string         `json:"listen"`
	TimeoutMs  int64          `json:"timeout_ms"`
	Setup      []string       `json:"setup,omitempty"`
	SetupFiles []string       `json:"setup_files,omitempty"`
	Exports    []exportConfig `json:"exports"`
	// Snapshot, when set, is loaded at boot (if present) and written on
	// graceful shutdown — durability only across CLEAN restarts. For
	// crash durability use data_dir instead; the two are mutually
	// exclusive.
	Snapshot string `json:"snapshot,omitempty"`
	// DataDir makes the component database durable: committed writes go
	// to a write-ahead log in this directory and boot recovers the
	// latest checkpoint plus the log tail, surviving kill -9.
	DataDir string `json:"data_dir,omitempty"`
	// WALSync is the commit fsync policy: "always" (default — no
	// acknowledged commit is ever lost), "interval", or "off".
	WALSync string `json:"wal_sync,omitempty"`
	// CheckpointBytes triggers a background checkpoint (fresh snapshot,
	// log truncated) when the WAL outgrows it (0 = never checkpoint).
	CheckpointBytes int64 `json:"checkpoint_bytes,omitempty"`
	// StreamBatchRows caps rows per streaming batch frame served to
	// federations (0 = comm.DefaultBatchRows).
	StreamBatchRows int `json:"stream_batch_rows,omitempty"`
	// MemBudgetBytes bounds the component engine's blocking-operator
	// memory (0 = unlimited): ORDER BY without LIMIT spills sorted
	// runs to spill_dir past it instead of materializing the sort.
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
	// SpillDir is where spill runs are written ("" = OS temp dir).
	SpillDir string `json:"spill_dir,omitempty"`
	// LockWaitMs caps how long any statement may wait for a lock before
	// failing with the timeout the federation treats as a presumed
	// deadlock — the backstop behind wound-wait and the coordinator's
	// detector. 0 (the default) leaves waits bounded only by each
	// request's own deadline.
	LockWaitMs int64 `json:"lock_wait_ms,omitempty"`
}

func main() {
	configPath := flag.String("config", "", "path to gateway config JSON (required)")
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*configPath); err != nil {
		log.Fatalf("gatewayd: %v", err)
	}
}

func run(configPath string) error {
	raw, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	var cfg config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", configPath, err)
	}
	if cfg.Site == "" {
		return fmt.Errorf("config: site is required")
	}
	if cfg.Listen == "" {
		cfg.Listen = ":7101"
	}

	d, err := dialect.ForName(cfg.Dialect)
	if err != nil {
		return err
	}
	budget := spill.EnvBudget() // test hook; nil in production
	if cfg.MemBudgetBytes > 0 {
		budget = spill.NewBudget(cfg.MemBudgetBytes, cfg.SpillDir)
		log.Printf("gatewayd: memory budget %d bytes, spilling to %s", cfg.MemBudgetBytes, budget.Dir())
	}
	if cfg.DataDir != "" && cfg.Snapshot != "" {
		return fmt.Errorf("config: data_dir and snapshot are mutually exclusive (data_dir subsumes snapshot)")
	}
	var db *localdb.DB
	restored := false
	if cfg.DataDir != "" {
		sync, err := wal.ParseSync(cfg.WALSync)
		if err != nil {
			return fmt.Errorf("config: %w", err)
		}
		db, err = localdb.Open(cfg.Site, cfg.DataDir, localdb.DurabilityOptions{
			Sync: sync, CheckpointBytes: cfg.CheckpointBytes, Budget: budget,
		})
		if err != nil {
			return fmt.Errorf("opening durable database in %s: %w", cfg.DataDir, err)
		}
		defer db.Close() //nolint:errcheck
		// A recovered database already carries its schema and rows.
		restored = len(db.TableNames()) > 0
		log.Printf("gatewayd: durable database in %s (wal_sync=%s, checkpoint_bytes=%d, recovered=%v)",
			cfg.DataDir, sync, cfg.CheckpointBytes, restored)
	} else {
		db = localdb.NewWithBudget(cfg.Site, budget)
	}

	if cfg.Snapshot != "" {
		if f, err := os.Open(cfg.Snapshot); err == nil {
			err = db.LoadSnapshot(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("loading snapshot %s: %w", cfg.Snapshot, err)
			}
			restored = true
			log.Printf("gatewayd: restored snapshot %s", cfg.Snapshot)
		} else if !os.IsNotExist(err) {
			return err
		}
	}

	ctx := context.Background()
	apply := func(script, origin string) error {
		stmts, err := sqlparser.ParseScript(script)
		if err != nil {
			return fmt.Errorf("%s: %w", origin, err)
		}
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *sqlparser.Select:
				return fmt.Errorf("%s: SELECT not allowed in setup", origin)
			case *sqlparser.TxnStmt:
				continue
			default:
				if _, err := db.Exec(ctx, s.String()); err != nil {
					return fmt.Errorf("%s: %v", origin, err)
				}
			}
		}
		return nil
	}
	// Setup scripts only run on a fresh database; a restored snapshot
	// already contains their effects.
	if !restored {
		for i, stmt := range cfg.Setup {
			if err := apply(stmt, fmt.Sprintf("setup[%d]", i)); err != nil {
				return err
			}
		}
		for _, f := range cfg.SetupFiles {
			script, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			if err := apply(string(script), f); err != nil {
				return err
			}
		}
	}

	gw := gateway.New(cfg.Site, db, d)
	if cfg.TimeoutMs > 0 {
		gw.DefaultTimeout = time.Duration(cfg.TimeoutMs) * time.Millisecond
	}
	if cfg.LockWaitMs > 0 {
		db.SetLockWait(time.Duration(cfg.LockWaitMs) * time.Millisecond)
		log.Printf("gatewayd: lock-wait backstop %dms", cfg.LockWaitMs)
	}
	for _, e := range cfg.Exports {
		exp := gateway.Export{Name: e.Name, LocalTable: e.Table, Predicate: e.Predicate}
		for _, c := range e.Columns {
			exp.Columns = append(exp.Columns, gateway.ExportColumn{Export: c.Export, Local: c.Local})
		}
		if err := gw.DefineExport(exp); err != nil {
			return err
		}
	}

	// The gateway implements comm.StreamHandler: OpQuery responses
	// stream as row batches straight off the local iterator pipeline.
	srv := comm.NewServer(gw)
	srv.BatchRows = cfg.StreamBatchRows
	addr, err := srv.Listen(cfg.Listen)
	if err != nil {
		return err
	}
	batch := cfg.StreamBatchRows
	if batch <= 0 {
		batch = comm.DefaultBatchRows
	}
	log.Printf("gatewayd: site %s (%s dialect) serving on %s with %d exports (streaming %d-row batches)",
		cfg.Site, d.Name, addr, len(cfg.Exports), batch)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("gatewayd: shutting down")
	if err := srv.Close(); err != nil {
		return err
	}
	if cfg.Snapshot != "" {
		f, err := os.Create(cfg.Snapshot)
		if err != nil {
			return err
		}
		if err := db.SaveSnapshot(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("gatewayd: wrote snapshot %s", cfg.Snapshot)
	}
	return nil
}

// Command myriadd runs a MYRIAD federation server: it connects to the
// configured component gateways, installs the integrated relation
// definitions, and serves the federation protocol (global queries,
// global transactions, schema browsing) over TCP.
//
// Usage:
//
//	myriadd -config federation.json
//
// Config format (JSON):
//
//	{
//	  "name": "university",
//	  "listen": ":7100",
//	  "strategy": "cost-based",            // or "simple"
//	  "local_query_timeout_ms": 2000,      // deadlock-resolution timeout
//	  "deadlock_detect_ms": 1000,          // global detector tick; 0 = off
//	  "coordinator_compact_bytes": 1048576, // coordinator log compaction trigger; 0 = off
//	  "sites": [{"name": "east", "addr": "localhost:7101", "pool": 4}],
//	  "integrated": [
//	    {"name": "ALL_STUDENTS",
//	     "columns": [{"name": "id", "type": "INTEGER"}, ...],
//	     "key": ["id"],
//	     "combine": "union all",           // union all | union | merge
//	     "resolvers": {"email": "first"},
//	     "sources": [{"site": "east", "export": "STUDENT",
//	                  "map": {"id": "id", "name": "name"},
//	                  "filter": "gpa > 0"}]}
//	  ]
//	}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"myriad/internal/comm"
	"myriad/internal/core"
	"myriad/internal/executor"
	"myriad/internal/fedserver"
	"myriad/internal/gateway"
	"myriad/internal/wal"
)

type siteConfig struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	Pool int    `json:"pool,omitempty"`
}

type config struct {
	Name           string                        `json:"name"`
	Listen         string                        `json:"listen"`
	Strategy       string                        `json:"strategy,omitempty"`
	LocalTimeoutMs int64                         `json:"local_query_timeout_ms,omitempty"`
	Sites          []siteConfig                  `json:"sites"`
	Integrated     []fedserver.IntegratedDefJSON `json:"integrated"`
	// StreamBatchRows caps rows per streaming batch frame served to
	// clients (0 = comm.DefaultBatchRows).
	StreamBatchRows int `json:"stream_batch_rows,omitempty"`
	// FanIn selects the fan-in policy for multi-source scan sets:
	// "auto" (default), "source-order", "interleave" (batches emit in
	// completion order; first-row latency bound by the fastest site),
	// or "merge" (ordered k-way merge where source ordering is known).
	FanIn string `json:"fan_in,omitempty"`
	// StreamRowBudget caps integrated rows in flight per scan set
	// across its source streams (0 = executor default); per-source
	// prefetch windows shrink as sources multiply.
	StreamRowBudget int `json:"stream_row_budget,omitempty"`
	// StreamByteBudget additionally caps bytes in flight per scan set
	// (0 = rows-only): wide rows shrink feeder batches instead of
	// blowing the rows-in-flight window.
	StreamByteBudget int64 `json:"stream_byte_budget,omitempty"`
	// MemBudgetBytes bounds each global query's blocking-operator
	// memory (0 = unlimited): sorts and OUTERJOIN-MERGE spill sorted
	// runs to spill_dir past it.
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
	// SpillDir is where spill runs are written ("" = OS temp dir).
	SpillDir string `json:"spill_dir,omitempty"`
	// CoordinatorLog, when set, is the path of the durable two-phase
	// commit coordinator log: commit decisions are fsynced before phase
	// two, and on startup the log replays and unfinished global
	// transactions are re-driven (undecided abort, decided commit).
	CoordinatorLog string `json:"coordinator_log,omitempty"`
	// CoordinatorSync selects the coordinator log's append sync policy
	// for non-decision records: "always" (default), "interval", "off".
	// Commit decisions are always fsynced regardless.
	CoordinatorSync string `json:"coordinator_sync,omitempty"`
	// CoordinatorCompactBytes triggers coordinator-log compaction (the
	// log is rewritten down to its live entries) when it outgrows this
	// size. Absent defaults to 1MB whenever coordinator_log is set;
	// 0 disables automatic compaction.
	CoordinatorCompactBytes *int64 `json:"coordinator_compact_bytes,omitempty"`
	// DeadlockDetectMs is the tick of the coordinator's global deadlock
	// detector, which stitches every site's waits-for edges and wounds
	// the youngest transaction of each cycle. Absent defaults to 1000ms;
	// 0 disables detection, leaving deadlocks to the sites' wound-wait
	// fast path and lock-wait timeouts.
	DeadlockDetectMs *int64 `json:"deadlock_detect_ms,omitempty"`
}

func main() {
	configPath := flag.String("config", "", "path to federation config JSON (required)")
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*configPath); err != nil {
		log.Fatalf("myriadd: %v", err)
	}
}

func run(configPath string) error {
	raw, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	var cfg config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", configPath, err)
	}
	if cfg.Name == "" {
		return fmt.Errorf("config: name is required")
	}
	if cfg.Listen == "" {
		cfg.Listen = ":7100"
	}

	fed := core.New(cfg.Name)
	switch strings.ToLower(cfg.Strategy) {
	case "", "cost-based", "costbased", "full":
		fed.Strategy = core.StrategyCostBased
	case "simple":
		fed.Strategy = core.StrategySimple
	default:
		return fmt.Errorf("config: unknown strategy %q", cfg.Strategy)
	}
	if cfg.LocalTimeoutMs > 0 {
		fed.SetLocalQueryTimeout(time.Duration(cfg.LocalTimeoutMs) * time.Millisecond)
	}
	fanIn, err := executor.ParseFanIn(cfg.FanIn)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	fed.FanIn = fanIn
	fed.StreamRowBudget = cfg.StreamRowBudget
	fed.StreamByteBudget = cfg.StreamByteBudget
	fed.MemBudget = cfg.MemBudgetBytes
	fed.SpillDir = cfg.SpillDir
	if cfg.MemBudgetBytes > 0 {
		dir := cfg.SpillDir
		if dir == "" {
			dir = os.TempDir()
		}
		log.Printf("myriadd: per-query memory budget %d bytes, spilling to %s", cfg.MemBudgetBytes, dir)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, s := range cfg.Sites {
		pool := s.Pool
		if pool <= 0 {
			pool = 4
		}
		conn := gateway.DialRemote(s.Name, s.Addr, pool)
		if err := fed.AttachSite(ctx, conn); err != nil {
			return fmt.Errorf("attaching %s (%s): %w", s.Name, s.Addr, err)
		}
		log.Printf("myriadd: attached site %s at %s", s.Name, s.Addr)
	}
	if cfg.CoordinatorLog != "" {
		sync, err := wal.ParseSync(cfg.CoordinatorSync)
		if err != nil {
			return fmt.Errorf("config: coordinator_sync: %w", err)
		}
		if err := fed.EnableCoordinatorLog(cfg.CoordinatorLog, wal.Options{Sync: sync}); err != nil {
			return fmt.Errorf("coordinator log: %w", err)
		}
		if n := fed.Coordinator().Pending(); n > 0 {
			log.Printf("myriadd: coordinator log replay found %d unfinished global transaction(s), recovering", n)
			if err := fed.RecoverGlobal(ctx); err != nil {
				// Not fatal: a participant may still be down. The entries
				// stay pending; recovering sites can also pull outcomes
				// through OpTxnStatus.
				log.Printf("myriadd: global recovery incomplete: %v", err)
			}
		}
		compact := int64(1 << 20)
		if cfg.CoordinatorCompactBytes != nil {
			compact = *cfg.CoordinatorCompactBytes
		}
		fed.Coordinator().SetCompactBytes(compact)
		log.Printf("myriadd: coordinator log at %s (sync=%s, compact_bytes=%d)", cfg.CoordinatorLog, sync, compact)
	}
	detect := int64(1000)
	if cfg.DeadlockDetectMs != nil {
		detect = *cfg.DeadlockDetectMs
	}
	if detect > 0 {
		fed.StartDeadlockDetector(time.Duration(detect) * time.Millisecond)
		defer fed.StopDeadlockDetector()
		log.Printf("myriadd: global deadlock detector every %dms", detect)
	}
	for i := range cfg.Integrated {
		def, err := cfg.Integrated[i].ToDef()
		if err != nil {
			return fmt.Errorf("integrated[%d]: %w", i, err)
		}
		if err := fed.DefineIntegrated(def); err != nil {
			return fmt.Errorf("integrated[%d]: %w", i, err)
		}
		log.Printf("myriadd: defined integrated relation %s", def.Name)
	}

	// fedserver implements comm.StreamHandler: autocommit global query
	// results stream to clients as the federation produces them, with
	// remote fragments pipelining in from the gatewayds underneath.
	fs := fedserver.New(fed)
	fs.Logf = log.Printf // per-source stream metrics, one line per query
	srv := comm.NewServer(fs)
	srv.BatchRows = cfg.StreamBatchRows
	addr, err := srv.Listen(cfg.Listen)
	if err != nil {
		return err
	}
	log.Printf("myriadd: federation %q serving on %s (%d sites, %d integrated relations, %v strategy, streaming transport)",
		cfg.Name, addr, len(cfg.Sites), len(cfg.Integrated), fed.Strategy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("myriadd: shutting down")
	return srv.Close()
}

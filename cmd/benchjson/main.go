// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON artifact (BENCH_PR*.json in CI). The artifact
// stays benchstat-compatible: the "raw" field preserves the benchmark
// text lines verbatim, so `jq -r '.raw[]' BENCH_PR5.json | benchstat
// /dev/stdin` (or any tool speaking the Go benchmark format) consumes
// it directly, while "benchmarks" carries the parsed metrics for
// dashboards that prefer structured data.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x ./internal/testfed/... | go run ./cmd/benchjson > BENCH_PR5.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value (ns/op, B/op, allocs/op, ...)
}

// Artifact is the emitted document.
type Artifact struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Raw        []string    `json:"raw"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	art := Artifact{Raw: []string{}, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			art.Goos = strings.TrimPrefix(line, "goos: ")
			art.Raw = append(art.Raw, line)
		case strings.HasPrefix(line, "goarch: "):
			art.Goarch = strings.TrimPrefix(line, "goarch: ")
			art.Raw = append(art.Raw, line)
		case strings.HasPrefix(line, "cpu: "):
			art.CPU = strings.TrimPrefix(line, "cpu: ")
			art.Raw = append(art.Raw, line)
		case strings.HasPrefix(line, "pkg: "):
			art.Raw = append(art.Raw, line)
		case strings.HasPrefix(line, "Benchmark"):
			art.Raw = append(art.Raw, line)
			if b, ok := parseBench(line); ok {
				art.Benchmarks = append(art.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&art); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench parses "BenchmarkX-4  10  123 ns/op  45 B/op  6 allocs/op".
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

module myriad

go 1.24

// Network: the full wire deployment in one process — two gateway
// servers and a federation server on TCP loopback (the paper ran the
// same topology across SPARCstations with BSD sockets), driven through
// the network client.
package main

import (
	"context"
	"fmt"
	"log"

	"myriad"
)

func main() {
	ctx := context.Background()

	// ------------------------------------------------------------------
	// Component sites, each served over TCP like a gatewayd process.

	inv := myriad.NewComponentDB("inventory")
	inv.MustExec(`CREATE TABLE items (sku TEXT PRIMARY KEY, descr TEXT, qty INTEGER)`)
	inv.MustExec(`INSERT INTO items VALUES ('a1', 'anvil', 12), ('b2', 'bolt', 900), ('c3', 'crate', 41)`)
	gwInv := myriad.NewGateway("inventory", inv, myriad.DialectOracle())
	must(gwInv.DefineExport(myriad.Export{Name: "ITEM", LocalTable: "items"}))
	invAddr, stopInv, err := myriad.ServeGateway(gwInv, "127.0.0.1:0")
	must(err)
	defer stopInv() //nolint:errcheck
	fmt.Printf("gatewayd[inventory] on %s\n", invAddr)

	sales := myriad.NewComponentDB("sales")
	sales.MustExec(`CREATE TABLE sold (sku TEXT, n INTEGER, day TEXT, PRIMARY KEY (sku, day))`)
	sales.MustExec(`INSERT INTO sold VALUES ('a1', 2, 'mon'), ('b2', 40, 'mon'), ('a1', 1, 'tue'), ('c3', 7, 'tue')`)
	gwSales := myriad.NewGateway("sales", sales, myriad.DialectPostgres())
	must(gwSales.DefineExport(myriad.Export{Name: "SALE", LocalTable: "sold"}))
	salesAddr, stopSales, err := myriad.ServeGateway(gwSales, "127.0.0.1:0")
	must(err)
	defer stopSales() //nolint:errcheck
	fmt.Printf("gatewayd[sales]     on %s\n", salesAddr)

	// ------------------------------------------------------------------
	// Federation server attaches to the gateways over TCP (myriadd).

	fed := myriad.NewFederation("store")
	must(fed.AttachSite(ctx, myriad.DialGateway("inventory", invAddr, 4)))
	must(fed.AttachSite(ctx, myriad.DialGateway("sales", salesAddr, 4)))
	must(fed.DefineIntegrated(&myriad.IntegratedDef{
		Name: "STOCK",
		Columns: []myriad.Column{
			{Name: "sku", Type: myriad.TText},
			{Name: "descr", Type: myriad.TText},
			{Name: "qty", Type: myriad.TInt},
		},
		Key:     []string{"sku"},
		Combine: myriad.UnionAll,
		Sources: []myriad.SourceDef{{Site: "inventory", Export: "ITEM",
			ColumnMap: map[string]string{"sku": "sku", "descr": "descr", "qty": "qty"}}},
	}))
	must(fed.DefineIntegrated(&myriad.IntegratedDef{
		Name: "SALES",
		Columns: []myriad.Column{
			{Name: "sku", Type: myriad.TText},
			{Name: "n", Type: myriad.TInt},
			{Name: "day", Type: myriad.TText},
		},
		Combine: myriad.UnionAll,
		Sources: []myriad.SourceDef{{Site: "sales", Export: "SALE",
			ColumnMap: map[string]string{"sku": "sku", "n": "n", "day": "day"}}},
	}))

	fedAddr, stopFed, err := myriad.ServeFederation(fed, "127.0.0.1:0")
	must(err)
	defer stopFed() //nolint:errcheck
	fmt.Printf("myriadd[store]      on %s\n\n", fedAddr)

	// ------------------------------------------------------------------
	// A network client (what myriadctl wraps).

	client := myriad.DialFederation(fedAddr, 2)
	defer client.Close() //nolint:errcheck

	catalog, err := client.Catalog(ctx)
	must(err)
	fmt.Printf("== federated catalog ==\n%s\n", catalog)

	q := `SELECT s.sku, st.descr, SUM(s.n) AS sold, st.qty AS in_stock
	      FROM SALES s JOIN STOCK st ON s.sku = st.sku
	      GROUP BY s.sku, st.descr, st.qty ORDER BY sold DESC`
	rs, err := client.Query(ctx, q)
	must(err)
	fmt.Printf("== cross-site sales report ==\n%s\n", rs.String())

	plan, err := client.Explain(ctx, q)
	must(err)
	fmt.Printf("== plan ==\n%s\n", plan)

	// A global transaction over the wire: record a sale and decrement
	// stock atomically across the two component databases.
	txn, err := client.Begin(ctx)
	must(err)
	if _, err := txn.ExecSite(ctx, "sales", `INSERT INTO SALE (sku, n, day) VALUES ('c3', 3, 'wed')`); err != nil {
		txn.Abort(ctx) //nolint:errcheck
		log.Fatal(err)
	}
	if _, err := txn.ExecSite(ctx, "inventory", `UPDATE ITEM SET qty = qty - 3 WHERE sku = 'c3'`); err != nil {
		txn.Abort(ctx) //nolint:errcheck
		log.Fatal(err)
	}
	must(txn.Commit(ctx))
	fmt.Println("recorded sale of 3 crates atomically across sites (2PC over TCP)")

	rs, err = client.Query(ctx, `SELECT sku, qty FROM STOCK WHERE sku = 'c3'`)
	must(err)
	fmt.Print(rs.String())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

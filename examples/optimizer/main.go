// Optimizer: a side-by-side tour of the paper's two query-processing
// strategies — the "simple" strategy the 1994 prototype shipped and the
// "full-fledged" cost-based strategy it was building — on the three
// rewrites that matter: selection pushdown, semijoin reduction, and
// partial aggregation.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"myriad"
	"myriad/internal/workload"
)

func main() {
	ctx := context.Background()

	fmt.Println("== selection pushdown (PARTS: 2 sites x 5000 rows) ==")
	parts := workload.BuildParts(workload.PartsSpec{Sites: 2, RowsPerSite: 5000, Seed: 42})
	for _, sel := range []float64{0.01, 0.5} {
		sql := fmt.Sprintf(`SELECT id, name, weight FROM PARTS WHERE weight < %g`, sel*1000)
		fmt.Printf("\nselectivity %.0f%%: %s\n", sel*100, sql)
		compare(ctx, parts.Fed, sql)
	}

	fmt.Println("\n== semijoin reduction (500 customers, 20000 orders, 2% gold) ==")
	orders := workload.BuildOrders(workload.OrdersSpec{Customers: 500, Orders: 20000, HotPercent: 0.02, Seed: 42})
	join := `SELECT c.cname, SUM(o.amount) AS spent
	         FROM CUSTOMERS c JOIN ORDERS o ON c.cid = o.cust
	         WHERE c.tier = 'gold' GROUP BY c.cname`
	compare(ctx, orders.Fed, join)
	plan, err := orders.Fed.Explain(ctx, join, myriad.StrategyCostBased)
	must(err)
	fmt.Printf("\ncost-based plan (note the semijoin probe):\n%s", plan)

	fmt.Println("\n== partial aggregation (PARTS: 4 sites x 5000 rows) ==")
	wide := workload.BuildParts(workload.PartsSpec{Sites: 4, RowsPerSite: 5000, Seed: 42})
	agg := `SELECT category, COUNT(*) AS n, ROUND(AVG(price), 2) AS avg_price
	        FROM PARTS GROUP BY category ORDER BY category LIMIT 3`
	compare(ctx, wide.Fed, agg)
	plan, err = wide.Fed.Explain(ctx, agg, myriad.StrategyCostBased)
	must(err)
	fmt.Printf("\ncost-based plan (sites pre-aggregate):\n%s", plan)
}

// compare runs one query under both strategies and prints latency and
// rows shipped from the component sites.
func compare(ctx context.Context, fed *myriad.Federation, sql string) {
	for _, strat := range []myriad.Strategy{myriad.StrategySimple, myriad.StrategyCostBased} {
		start := time.Now()
		rs, m, err := fed.QueryMetered(ctx, sql, strat)
		must(err)
		fmt.Printf("  %-11v %8.2fms  %6d rows shipped  (%d result rows)\n",
			strat, float64(time.Since(start).Microseconds())/1000, m.RowsShipped, len(rs.Rows))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Quickstart: the smallest complete MYRIAD deployment — two in-process
// component databases, one integrated relation, one global query.
package main

import (
	"context"
	"fmt"
	"log"

	"myriad"
)

func main() {
	ctx := context.Background()

	// Two autonomous component databases. Each keeps its own schema;
	// neither knows about the other.
	north := myriad.NewComponentDB("north")
	north.MustExec(`CREATE TABLE staff (eid INTEGER PRIMARY KEY, ename TEXT NOT NULL, wage FLOAT)`)
	north.MustExec(`INSERT INTO staff VALUES (1, 'amy', 52.5), (2, 'ben', 41.0), (3, 'cho', 63.2)`)

	south := myriad.NewComponentDB("south")
	south.MustExec(`CREATE TABLE workers (id INTEGER PRIMARY KEY, name TEXT NOT NULL, hourly FLOAT)`)
	south.MustExec(`INSERT INTO workers VALUES (10, 'dee', 38.7), (11, 'eli', 55.0)`)

	// Gateways expose export relations; the two sites speak different
	// SQL dialects, which the gateways translate transparently.
	gwNorth := myriad.NewGateway("north", north, myriad.DialectOracle())
	must(gwNorth.DefineExport(myriad.Export{Name: "EMP", LocalTable: "staff",
		Columns: []myriad.ExportColumn{
			{Export: "id", Local: "eid"},
			{Export: "name", Local: "ename"},
			{Export: "rate", Local: "wage"},
		}}))

	gwSouth := myriad.NewGateway("south", south, myriad.DialectPostgres())
	must(gwSouth.DefineExport(myriad.Export{Name: "EMP", LocalTable: "workers",
		Columns: []myriad.ExportColumn{
			{Export: "id", Local: "id"},
			{Export: "name", Local: "name"},
			{Export: "rate", Local: "hourly"},
		}}))

	// The federation: one integrated relation spanning both sites.
	fed := myriad.NewFederation("quickstart")
	must(fed.AttachSite(ctx, myriad.LocalConn(gwNorth)))
	must(fed.AttachSite(ctx, myriad.LocalConn(gwSouth)))
	must(fed.DefineIntegrated(&myriad.IntegratedDef{
		Name: "EMPLOYEES",
		Columns: []myriad.Column{
			{Name: "id", Type: myriad.TInt},
			{Name: "name", Type: myriad.TText},
			{Name: "rate", Type: myriad.TFloat},
			{Name: "region", Type: myriad.TText},
		},
		Key:     []string{"id"},
		Combine: myriad.UnionAll,
		Sources: []myriad.SourceDef{
			{Site: "north", Export: "EMP", ColumnMap: map[string]string{
				"id": "id", "name": "name", "rate": "rate", "region": "'north'"}},
			{Site: "south", Export: "EMP", ColumnMap: map[string]string{
				"id": "id", "name": "name", "rate": "rate", "region": "'south'"}},
		},
	}))

	// One global query, spanning both component databases.
	rs, err := fed.Query(ctx, `SELECT name, rate, region FROM EMPLOYEES WHERE rate > 40 ORDER BY rate DESC`)
	must(err)
	fmt.Println("employees earning more than 40/hour, enterprise-wide:")
	fmt.Print(rs.String())

	// And the plan that produced it.
	plan, err := fed.Explain(ctx, `SELECT name, rate, region FROM EMPLOYEES WHERE rate > 40`, myriad.StrategyCostBased)
	must(err)
	fmt.Println("\nplan (cost-based):")
	fmt.Print(plan)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

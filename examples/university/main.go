// University: the paper's motivating scenario — "enterprise-wide"
// information over independently developed databases. Two campus
// registrars run different DBMS dialects with different schemas; the
// federation integrates them with renaming, derived columns,
// outer-join-merge entity integration, and a user-defined integration
// function, then answers cross-campus queries with both optimizer
// strategies.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"myriad"
	"myriad/internal/value"
)

func main() {
	ctx := context.Background()

	// ------------------------------------------------------------------
	// Component databases (autonomous, heterogeneous).

	// East campus: an Oracle-style registrar.
	east := myriad.NewComponentDB("east")
	east.MustExec(`CREATE TABLE students (sid INTEGER PRIMARY KEY, sname TEXT NOT NULL, gpa FLOAT, yr INTEGER, advisor TEXT)`)
	east.MustExec(`INSERT INTO students VALUES
		(1, 'ann', 3.9, 1, 'prof-x'), (2, 'bo', 3.1, 2, 'prof-y'),
		(3, 'cy', 2.5, 3, 'prof-x'), (4, 'di', 3.7, 2, 'prof-z'),
		(5, 'ed', 3.2, 1, NULL)`)
	east.MustExec(`CREATE TABLE grads (gid INTEGER PRIMARY KEY, gname TEXT, thesis TEXT)`)
	east.MustExec(`INSERT INTO grads VALUES (900, 'zoe', 'federated databases'), (901, 'yan', 'query optimization')`)

	// West campus: a Postgres-style registrar with different names and
	// a 0-100 grade scale instead of 0-4 GPA.
	west := myriad.NewComponentDB("west")
	west.MustExec(`CREATE TABLE pupils (id INTEGER PRIMARY KEY, full_name TEXT NOT NULL, pct_grade FLOAT, level INTEGER)`)
	west.MustExec(`INSERT INTO pupils VALUES
		(101, 'fay', 95.0, 3), (102, 'gil', 72.5, 2), (103, 'hal', 80.0, 1), (104, 'ivy', 99.0, 4)`)

	gwEast := myriad.NewGateway("east", east, myriad.DialectOracle())
	must(gwEast.DefineExport(myriad.Export{Name: "STUDENT", LocalTable: "students",
		Columns: []myriad.ExportColumn{
			{Export: "id", Local: "sid"}, {Export: "name", Local: "sname"},
			{Export: "gpa", Local: "gpa"}, {Export: "year", Local: "yr"},
			{Export: "advisor", Local: "advisor"},
		}}))
	// Site autonomy: east exports only non-thesis grad info, filtered.
	must(gwEast.DefineExport(myriad.Export{Name: "GRAD", LocalTable: "grads",
		Columns: []myriad.ExportColumn{
			{Export: "id", Local: "gid"}, {Export: "name", Local: "gname"},
		}}))

	gwWest := myriad.NewGateway("west", west, myriad.DialectPostgres())
	must(gwWest.DefineExport(myriad.Export{Name: "STUDENT", LocalTable: "pupils",
		Columns: []myriad.ExportColumn{
			{Export: "id", Local: "id"}, {Export: "name", Local: "full_name"},
			{Export: "pct", Local: "pct_grade"}, {Export: "year", Local: "level"},
		}}))

	// ------------------------------------------------------------------
	// Federation: one schema over both campuses.

	fed := myriad.NewFederation("university")
	must(fed.AttachSite(ctx, myriad.LocalConn(gwEast)))
	must(fed.AttachSite(ctx, myriad.LocalConn(gwWest)))

	// A user-defined integration function: prefer a plausible GPA
	// (0..4) over junk when campuses disagree.
	myriad.RegisterIntegrationFunc("plausible_gpa", func(vals []myriad.Value) (myriad.Value, error) {
		for _, v := range vals {
			if f, ok := v.Float(); ok && f >= 0 && f <= 4 {
				return v, nil
			}
		}
		return value.Null(), nil
	})

	// ALL_STUDENTS: union of both campuses; west's percentage grades
	// are converted to the 4-point scale inside the source mapping
	// (derived-column integration).
	must(fed.DefineIntegrated(&myriad.IntegratedDef{
		Name: "ALL_STUDENTS",
		Columns: []myriad.Column{
			{Name: "id", Type: myriad.TInt},
			{Name: "name", Type: myriad.TText},
			{Name: "gpa", Type: myriad.TFloat},
			{Name: "year", Type: myriad.TInt},
			{Name: "campus", Type: myriad.TText},
		},
		Key:     []string{"id"},
		Combine: myriad.UnionAll,
		Sources: []myriad.SourceDef{
			{Site: "east", Export: "STUDENT", ColumnMap: map[string]string{
				"id": "id", "name": "name", "gpa": "gpa", "year": "year", "campus": "'east'"}},
			{Site: "west", Export: "STUDENT", ColumnMap: map[string]string{
				"id": "id", "name": "name", "gpa": "pct / 25.0", "year": "year", "campus": "'west'"}},
		},
	}))

	fmt.Println("== cross-campus queries ==")
	for _, q := range []string{
		`SELECT COUNT(*) AS students FROM ALL_STUDENTS`,
		`SELECT campus, COUNT(*) AS n, ROUND(AVG(gpa), 2) AS avg_gpa FROM ALL_STUDENTS GROUP BY campus ORDER BY campus`,
		`SELECT name, gpa, campus FROM ALL_STUDENTS WHERE gpa >= 3.5 ORDER BY gpa DESC`,
		`SELECT year, COUNT(*) AS n FROM ALL_STUDENTS GROUP BY year HAVING COUNT(*) > 1 ORDER BY year`,
	} {
		rs, err := fed.Query(ctx, q)
		must(err)
		fmt.Printf("\n%s\n%s", q, rs.String())
	}

	// ------------------------------------------------------------------
	// Optimizer comparison on the same query.

	q := `SELECT name FROM ALL_STUDENTS WHERE gpa >= 3.5 AND campus = 'east'`
	fmt.Println("\n== optimizer strategies ==")
	for _, strat := range []myriad.Strategy{myriad.StrategySimple, myriad.StrategyCostBased} {
		_, metrics, err := fed.QueryMetered(ctx, q, strat)
		must(err)
		fmt.Printf("%-11v rows shipped from sites: %d\n", strat, metrics.RowsShipped)
	}
	plan, err := fed.Explain(ctx, q, myriad.StrategyCostBased)
	must(err)
	fmt.Printf("\ncost-based plan:\n%s", plan)

	// ------------------------------------------------------------------
	// Entity integration with conflict resolution: both campuses store
	// records for exchange students (same id), with disagreeing data.

	east.MustExec(`CREATE TABLE exchange (xid INTEGER PRIMARY KEY, xname TEXT, xgpa FLOAT)`)
	east.MustExec(`INSERT INTO exchange VALUES (500, 'kim', 3.4), (501, 'lee', 39.0)`) // 39.0 is junk
	west.MustExec(`CREATE TABLE visiting (vid INTEGER PRIMARY KEY, vname TEXT, vgpa FLOAT)`)
	west.MustExec(`INSERT INTO visiting VALUES (500, 'kim c.', 3.5), (501, 'lee', 3.0), (502, 'mo', 3.8)`)
	must(gwEast.DefineExport(myriad.Export{Name: "EXCHANGE", LocalTable: "exchange",
		Columns: []myriad.ExportColumn{
			{Export: "id", Local: "xid"}, {Export: "name", Local: "xname"}, {Export: "gpa", Local: "xgpa"},
		}}))
	must(gwWest.DefineExport(myriad.Export{Name: "EXCHANGE", LocalTable: "visiting",
		Columns: []myriad.ExportColumn{
			{Export: "id", Local: "vid"}, {Export: "name", Local: "vname"}, {Export: "gpa", Local: "vgpa"},
		}}))
	must(fed.RefreshSite(ctx, "east"))
	must(fed.RefreshSite(ctx, "west"))

	must(fed.DefineIntegrated(&myriad.IntegratedDef{
		Name: "EXCHANGE_STUDENTS",
		Columns: []myriad.Column{
			{Name: "id", Type: myriad.TInt},
			{Name: "name", Type: myriad.TText},
			{Name: "gpa", Type: myriad.TFloat},
		},
		Key:     []string{"id"},
		Combine: myriad.MergeOuter,
		Sources: []myriad.SourceDef{
			{Site: "east", Export: "EXCHANGE", ColumnMap: map[string]string{"id": "id", "name": "name", "gpa": "gpa"}},
			{Site: "west", Export: "EXCHANGE", ColumnMap: map[string]string{"id": "id", "name": "name", "gpa": "gpa"}},
		},
		Resolvers: map[string]string{
			"name": "first",         // east wins on names
			"gpa":  "plausible_gpa", // user-defined: first value in [0,4]
		},
	}))

	rs, err := fed.Query(ctx, `SELECT id, name, gpa FROM EXCHANGE_STUDENTS ORDER BY id`)
	must(err)
	fmt.Printf("\n== entity integration (outerjoin-merge + user-defined resolver) ==\n%s", rs.String())
	fmt.Println(strings.Repeat("-", 40))
	fmt.Println("note: lee's east gpa (39.0) was rejected by plausible_gpa;")
	fmt.Println("mo exists only at west and survives the outer merge.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

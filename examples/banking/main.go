// Banking: global transaction management — atomic cross-branch
// transfers under two-phase commit, and the paper's timeout mechanism
// resolving a genuine global deadlock that no single site can detect.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"myriad/internal/gtm"
	"myriad/internal/workload"
)

func main() {
	ctx := context.Background()

	dep := workload.BuildBank(workload.BankSpec{Sites: 2, AccountsPerSite: 10, InitialBalance: 1000})
	fed := dep.Fed
	fed.SetLocalQueryTimeout(250 * time.Millisecond)

	total, err := dep.TotalBalance(ctx)
	must(err)
	fmt.Printf("initial total balance across branches: %d\n", total)

	// ------------------------------------------------------------------
	// 1. An atomic cross-branch transfer (two-phase commit).

	err = fed.Transfer(ctx,
		"branch0", `UPDATE ACCT SET bal = bal - 100 WHERE id = 1`,
		"branch1", `UPDATE ACCT SET bal = bal + 100 WHERE id = 1`)
	must(err)
	fmt.Println("transfer of 100 committed via 2PC")

	// ------------------------------------------------------------------
	// 2. An aborted transfer leaves no trace at either branch.

	txn := fed.Begin()
	_, err = txn.ExecSite(ctx, "branch0", `UPDATE ACCT SET bal = bal - 999999 WHERE id = 2`)
	must(err)
	_, err = txn.ExecSite(ctx, "branch1", `UPDATE ACCT SET bal = bal + 999999 WHERE id = 2`)
	must(err)
	txn.Abort(ctx)
	fmt.Println("oversized transfer rolled back at both branches")

	// ------------------------------------------------------------------
	// 3. A global deadlock: T1 locks (branch0, acct 5) then wants
	// (branch1, acct 5); T2 the reverse. Neither branch sees a local
	// cycle — only the timeout resolves it, exactly as in the paper.

	t1, t2 := fed.Begin(), fed.Begin()
	_, err = t1.ExecSite(ctx, "branch0", `UPDATE ACCT SET bal = bal - 10 WHERE id = 5`)
	must(err)
	_, err = t2.ExecSite(ctx, "branch1", `UPDATE ACCT SET bal = bal - 10 WHERE id = 5`)
	must(err)

	var wg sync.WaitGroup
	results := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, results[0] = t1.ExecSite(ctx, "branch1", `UPDATE ACCT SET bal = bal + 10 WHERE id = 5`)
	}()
	go func() {
		defer wg.Done()
		_, results[1] = t2.ExecSite(ctx, "branch0", `UPDATE ACCT SET bal = bal + 10 WHERE id = 5`)
	}()
	wg.Wait()

	for i, err := range results {
		switch {
		case err == nil:
			fmt.Printf("T%d acquired its second lock\n", i+1)
		case errors.Is(err, gtm.ErrDeadlockAbort):
			fmt.Printf("T%d timed out and was aborted (presumed global deadlock)\n", i+1)
		default:
			fmt.Printf("T%d failed: %v\n", i+1, err)
		}
	}
	// Finish whatever survived.
	if t1.Active() {
		must(t1.Commit(ctx))
		fmt.Println("T1 committed after T2's abort released its locks")
	}
	if t2.Active() {
		must(t2.Commit(ctx))
		fmt.Println("T2 committed after T1's abort released its locks")
	}

	// ------------------------------------------------------------------
	// 4. Money is conserved: the aborted side of every conflict rolled
	// back, the committed side went through exactly once.

	finalTotal, err := dep.TotalBalance(ctx)
	must(err)
	fmt.Printf("final total balance: %d (must equal initial %d)\n", finalTotal, total)
	if finalTotal != total {
		log.Fatal("INVARIANT VIOLATED: money created or destroyed")
	}

	stats := &fed.Coordinator().Stats
	fmt.Printf("\ncoordinator stats: begun=%d committed=%d aborted=%d timeout-aborts=%d\n",
		stats.Begun.Load(), stats.Committed.Load(), stats.Aborted.Load(), stats.TimeoutAborts.Load())

	// The integrated view sees all branches at once.
	rs, err := fed.Query(ctx, `SELECT branch, SUM(bal) AS total FROM ACCOUNTS GROUP BY branch ORDER BY branch`)
	must(err)
	fmt.Printf("\nper-branch totals through the integrated ACCOUNTS view:\n%s", rs.String())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
